"""The built-in invariant monitors.

Each monitor watches one conservation property the paper's numbers rest
on.  They observe through read-only accessors (power ledgers, state
snapshots) and handler wrappers (:meth:`Node.wrap_handler`), never by
scheduling events, so an enabled suite perturbs nothing but wall time.

Registered names:

``channel-conservation``
    Power ledgers sum to ``current_power_mw``; pending receptions never
    outlive their end time; everything drains exactly when the channel
    reports zero transmissions in flight (and at quiescence).
``data-provenance``
    Every DATA reception traces back to its source or to a node that was
    a legitimate forwarder (active FG / on-tree) when it accepted the
    packet; sink totals equal the summed per-node delivery counters.
``metric-accumulation``
    The path cost carried by every JOIN QUERY equals the metric's
    declared algebra (sum / product / METX recursion) recomputed from
    the per-link costs actually observed along the path.
``forwarding-state``
    FG and tree expiries never exceed their configured lifetimes, and
    per-round best-upstream pointers stay acyclic.
``rng-isolation``
    A run's RNG streams derive from its own topology seed, carry only
    known subsystem names, and are never shared with another live run.
"""

from __future__ import annotations

import math
import weakref
from collections import defaultdict
from typing import Dict, Optional, Set, Tuple

from repro.core.accumulation import compose
from repro.maodv.protocol import MaodvRouter
from repro.net.packet import PacketKind
from repro.validation.invariants import InvariantMonitor, register_monitor

#: Window of flood rounds the packet-observing monitors keep state for;
#: matches (with slack) the router's own ``_prune_rounds`` horizon of 4.
_SEQ_HORIZON = 8

_TIME_EPS = 1e-9


def _prune_by_sequence(
    table: Dict[Tuple[int, int, int], object],
    max_seq: Dict[Tuple[int, int], int],
    group_id: int,
    source_id: int,
    sequence: int,
) -> None:
    """Drop per-round entries older than the horizon for one flow."""
    flow = (group_id, source_id)
    newest = max_seq.get(flow, 0)
    if sequence <= newest:
        return
    max_seq[flow] = sequence
    horizon = sequence - _SEQ_HORIZON
    if horizon <= 0:
        return
    stale = [
        key for key in table
        if key[0] == group_id and key[1] == source_id and key[2] <= horizon
    ]
    for key in stale:
        del table[key]


@register_monitor
class ChannelConservationMonitor(InvariantMonitor):
    """Channel power/pending-reception ledgers are exact and drain."""

    name = "channel-conservation"

    def check(self, now: float) -> None:
        network = self.scenario.network
        channel = network.channel
        in_flight = channel.transmissions_in_flight
        if in_flight < 0:
            self.fail(
                f"channel counted {in_flight} transmissions in flight "
                "(more ended than began)"
            )
        idle = in_flight == 0
        for node in network.nodes:
            ledger = node.power_ledger()
            total = math.fsum(ledger.values())
            power = node.current_power_mw
            if power < 0.0:
                self.fail(
                    f"negative audible power {power!r} mW",
                    node_id=node.node_id,
                )
            if not math.isclose(total, power, rel_tol=1e-6, abs_tol=1e-9):
                self.fail(
                    f"power ledger sums to {total!r} mW but "
                    f"current_power_mw is {power!r} mW "
                    f"({len(ledger)} contribution(s))",
                    node_id=node.node_id,
                )
            for reception in node.pending_receptions.values():
                if reception.end_time < now - _TIME_EPS:
                    self.fail(
                        f"pending reception outlived its end time "
                        f"({reception.end_time!r} < now={now!r})",
                        node_id=node.node_id,
                    )
                if reception.transmission not in ledger:
                    self.fail(
                        "pending reception for a transmission with no "
                        "power contribution on this node",
                        node_id=node.node_id,
                    )
            if idle:
                if power != 0.0 or ledger:
                    self.fail(
                        f"channel is idle but {len(ledger)} power "
                        f"contribution(s) ({power!r} mW) did not drain",
                        node_id=node.node_id,
                    )
                if node.pending_receptions:
                    self.fail(
                        f"channel is idle but "
                        f"{len(node.pending_receptions)} pending "
                        "reception(s) did not drain",
                        node_id=node.node_id,
                    )
                if node.transmitting:
                    self.fail(
                        "channel is idle but the node believes it is "
                        "transmitting",
                        node_id=node.node_id,
                    )

    def final_check(self, now: float) -> None:
        sim = self.scenario.network.sim
        if sim.quiescent and self.scenario.network.channel.transmissions_in_flight != 0:
            self.fail(
                "simulator is quiescent but the channel still counts "
                f"{self.scenario.network.channel.transmissions_in_flight} "
                "transmission(s) in flight"
            )
        self.check(now)


@register_monitor
class DataProvenanceMonitor(InvariantMonitor):
    """Every DATA reception traces to the source or a legal forwarder."""

    name = "data-provenance"

    def install(self, scenario, suite) -> None:
        super().install(scenario, suite)
        #: (group, source, seq) -> nodes allowed to have broadcast it.
        self._entitled: Dict[Tuple[int, int, int], Set[int]] = {}
        self._max_seq: Dict[Tuple[int, int], int] = {}
        for router in scenario.routers.values():
            self._hook(router)

    def _hook(self, router) -> None:
        def wrap(orig):
            def checked(packet, sender_id, rx_power_mw):
                self._observe(router, packet, sender_id)
                return orig(packet, sender_id, rx_power_mw)

            return checked

        router.node.wrap_handler(PacketKind.DATA, wrap)

    def _observe(self, router, packet, sender_id: int) -> None:
        payload = packet.payload
        key = (payload.group_id, payload.source_id, payload.sequence)
        entitled = self._entitled.get(key)
        if sender_id != payload.source_id and (
            entitled is None or sender_id not in entitled
        ):
            self.fail(
                f"DATA {payload.group_id}/{payload.source_id}"
                f"#{payload.sequence} heard from node {sender_id}, which "
                "neither originated it nor was a legitimate forwarder "
                "when it accepted it",
                node_id=router.node.node_id,
            )
        # Entitlement is granted at decision time: the router will accept
        # this packet (first copy) and rebroadcast iff its forwarding
        # state says so *right now* -- the same state `_on_data` is about
        # to consult at this same simulated instant.
        if not router.seen_data(*key) and router.would_forward_data(
            payload.group_id, payload.source_id
        ):
            self._entitled.setdefault(key, set()).add(router.node.node_id)
        _prune_by_sequence(
            self._entitled, self._max_seq,
            payload.group_id, payload.source_id, payload.sequence,
        )

    def check(self, now: float) -> None:
        network = self.scenario.network
        sink_total = self.scenario.sink.total_packets
        counted = int(network.total_counter("odmrp.data_delivered"))
        if sink_total != counted:
            self.fail(
                f"sink recorded {sink_total} deliveries but node "
                f"counters sum to {counted}"
            )


@register_monitor
class MetricAccumulationMonitor(InvariantMonitor):
    """JOIN QUERY path costs match the metric's algebra, link by link."""

    name = "metric-accumulation"

    def install(self, scenario, suite) -> None:
        super().install(scenario, suite)
        #: (group, source, seq) -> node -> {advertisable cost: link costs}.
        self._costs: Dict[
            Tuple[int, int, int],
            Dict[int, Dict[float, Tuple[float, ...]]],
        ] = {}
        self._max_seq: Dict[Tuple[int, int], int] = {}
        for router in scenario.routers.values():
            self._hook(router)

    def _hook(self, router) -> None:
        def wrap(orig):
            def checked(packet, sender_id, rx_power_mw):
                self._observe(router, packet, sender_id)
                return orig(packet, sender_id, rx_power_mw)

            return checked

        router.node.wrap_handler(PacketKind.JOIN_QUERY, wrap)

    def _observe(self, router, packet, sender_id: int) -> None:
        payload = packet.payload
        me = router.node.node_id
        if payload.source_id == me:
            return  # the router ignores its own flood
        metric = router.metric
        key = (payload.group_id, payload.source_id, payload.sequence)
        per_node = self._costs.setdefault(key, {})

        if sender_id == payload.source_id:
            initial = 0.0 if metric is None else metric.initial_cost()
            if payload.path_cost != initial or payload.hop_count != 0:
                self.fail(
                    f"JOIN QUERY straight from source {payload.source_id} "
                    f"carries cost={payload.path_cost!r} "
                    f"hops={payload.hop_count}, expected cost={initial!r} "
                    "hops=0",
                    node_id=me,
                )
            links: Tuple[float, ...] = ()
        else:
            recorded = per_node.get(sender_id)
            if recorded is None or payload.path_cost not in recorded:
                self.fail(
                    f"JOIN QUERY from node {sender_id} advertises cost "
                    f"{payload.path_cost!r}, which was never computed at "
                    f"that node for round {key}",
                    node_id=me,
                )
            links = recorded[payload.path_cost]

        if metric is None:
            charged = float(payload.hop_count + 1)
            new_links = links + (1.0,)
            expected = float(len(new_links))
        else:
            quality = router.neighbor_table.link_quality(sender_id)
            link_cost = metric.link_cost(quality)
            charged = metric.combine(payload.path_cost, link_cost)
            new_links = links + (link_cost,)
            expected = compose(metric, new_links)
        if not _cost_close(charged, expected):
            self.fail(
                f"metric {getattr(metric, 'name', 'hop')!r} accumulated "
                f"{charged!r} over per-link costs {new_links!r} but the "
                f"declared algebra recomputes {expected!r}",
                node_id=me,
            )
        per_node.setdefault(me, {})[charged] = new_links
        _prune_by_sequence(
            self._costs, self._max_seq,
            payload.group_id, payload.source_id, payload.sequence,
        )


def _cost_close(a: float, b: float) -> bool:
    if math.isinf(a) or math.isinf(b):
        return a == b
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)


@register_monitor
class ForwardingStateMonitor(InvariantMonitor):
    """FG/tree soft state respects its timeouts; upstreams are acyclic."""

    name = "forwarding-state"

    def check(self, now: float) -> None:
        routers = self.scenario.routers
        rounds: Dict[Tuple[int, int, int], Dict[int, int]] = defaultdict(dict)
        for node_id, router in routers.items():
            fg_limit = router.config.fg_timeout_s
            for group_id, expiry in router.fg_expiries().items():
                if expiry - now > fg_limit + _TIME_EPS:
                    self.fail(
                        f"forwarding group {group_id} expires at "
                        f"{expiry:.6f}s, {expiry - now:.6f}s from now -- "
                        f"beyond FG_TIMEOUT={fg_limit}s",
                        node_id=node_id,
                    )
            if isinstance(router, MaodvRouter):
                tree_limit = 1.5 * router.config.refresh_interval_s
                for (group_id, source_id), (_seq, expiry) in (
                    router.tree_expiries().items()
                ):
                    if expiry - now > tree_limit + _TIME_EPS:
                        self.fail(
                            f"tree ({group_id}, {source_id}) expires "
                            f"{expiry - now:.6f}s from now -- beyond the "
                            f"1.5x refresh lifetime {tree_limit}s",
                            node_id=node_id,
                        )
            for key, upstream in router.round_upstreams().items():
                rounds[key][node_id] = upstream
        for key, upstreams in rounds.items():
            cycle = _find_cycle(upstreams)
            if cycle is not None:
                self.fail(
                    f"best-upstream pointers for flood round {key} form "
                    f"a cycle: {' -> '.join(map(str, cycle + cycle[:1]))}",
                    node_id=cycle[0],
                )


def _find_cycle(upstreams: Dict[int, int]) -> Optional[list]:
    """First cycle in a functional pointer graph, or None.

    The metric-enhanced query round only replaces an upstream on a
    *strict* cost improvement and ``combine`` never improves a path for
    any paper metric, so these graphs must be forests rooted outside the
    tracked set (ultimately at the flood's source).
    """
    settled: Set[int] = set()
    for start in upstreams:
        if start in settled:
            continue
        path: list = []
        index: Dict[int, int] = {}
        node = start
        while node in upstreams and node not in settled:
            if node in index:
                return path[index[node]:]
            index[node] = len(path)
            path.append(node)
            node = upstreams[node]
        settled.update(path)
    return None


#: Stream names a scenario run may legitimately create on its simulator.
ALLOWED_STREAM_PREFIXES = (
    "mac.", "phy.", "odmrp.", "probe.", "cbr.", "testbed.", "mobility.",
)
ALLOWED_STREAM_NAMES = frozenset({"topology", "membership", "traffic"})

#: Live rng-isolation monitors across concurrently existing runs in this
#: process; weak so finished scenarios are collectable.
_LIVE_RNG_MONITORS: "weakref.WeakSet[RngIsolationMonitor]" = weakref.WeakSet()


@register_monitor
class RngIsolationMonitor(InvariantMonitor):
    """Per-run RNG streams never cross protocol/seed boundaries."""

    name = "rng-isolation"

    def install(self, scenario, suite) -> None:
        super().install(scenario, suite)
        self._registry_ref = weakref.ref(scenario.network.sim.rng)
        self._stream_ids: Dict[int, str] = {}
        _LIVE_RNG_MONITORS.add(self)

    def check(self, now: float) -> None:
        scenario = self.scenario
        registry = scenario.network.sim.rng
        if registry.master_seed != scenario.config.topology_seed:
            self.fail(
                f"run RNG master seed {registry.master_seed} != the "
                f"config's topology seed {scenario.config.topology_seed}"
            )
        streams = registry.stream_objects()
        for stream_name in streams:
            if stream_name in ALLOWED_STREAM_NAMES:
                continue
            if not stream_name.startswith(ALLOWED_STREAM_PREFIXES):
                self.fail(
                    f"unexpected RNG stream {stream_name!r} on the run's "
                    "simulator (not a known subsystem namespace)"
                )
        self._stream_ids = {
            id(stream): stream_name
            for stream_name, stream in streams.items()
        }
        for other in list(_LIVE_RNG_MONITORS):
            if other is self:
                continue
            other_registry = other._registry_ref()
            if other_registry is None or other_registry is registry:
                continue
            shared = self._stream_ids.keys() & other._stream_ids.keys()
            if shared:
                names = sorted(self._stream_ids[sid] for sid in shared)
                self.fail(
                    f"RNG stream(s) {names} are shared with another live "
                    "run -- streams must never cross protocol/seed "
                    "boundaries"
                )
