"""Tests for the adaptive probing-rate controller (future-work extension)."""

from __future__ import annotations

import pytest

from repro.net.packet import Packet, PacketKind
from repro.probing.adaptive import (
    AdaptiveProbeAgent,
    AdaptiveProbingConfig,
    ChannelUtilizationEstimator,
)
from repro.probing.neighbor_table import NeighborTable
from repro.sim.process import PeriodicTask
from tests.conftest import link, make_loss_network


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveProbingConfig(base_interval_s=0.0)
        with pytest.raises(ValueError):
            AdaptiveProbingConfig(utilization_ewma_weight=1.0)
        with pytest.raises(ValueError):
            AdaptiveProbingConfig(min_rate_multiplier=0.0)
        with pytest.raises(ValueError):
            AdaptiveProbingConfig(
                min_rate_multiplier=2.0, max_rate_multiplier=1.0
            )
        with pytest.raises(ValueError):
            AdaptiveProbingConfig(saturation_utilization=0.0)


class TestUtilizationEstimator:
    def test_idle_channel_reads_zero(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        estimator = ChannelUtilizationEstimator(
            network.sim, network.nodes[0], AdaptiveProbingConfig()
        )
        estimator.start()
        network.run(10.0)
        assert estimator.utilization == pytest.approx(0.0)
        assert estimator.samples > 50

    def test_busy_channel_reads_high(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        estimator = ChannelUtilizationEstimator(
            network.sim, network.nodes[1], AdaptiveProbingConfig()
        )
        estimator.start()
        # Saturate the air with back-to-back large frames from node 0.
        task = PeriodicTask(
            network.sim,
            0.005,
            lambda: network.nodes[0].send_broadcast(
                Packet(PacketKind.DATA, 0, 1400, network.sim.now)
            ),
        )
        task.start()
        network.run(30.0)
        task.stop()
        assert estimator.utilization > 0.5


class TestAdaptiveAgent:
    def test_idle_network_probes_faster_than_base(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        config = AdaptiveProbingConfig(base_interval_s=5.0)
        agent = AdaptiveProbeAgent(network.sim, network.nodes[0], config)
        agent.start()
        network.run(120.0)
        assert agent.intervals_used, "agent must have probed"
        mean_interval = sum(agent.intervals_used) / len(agent.intervals_used)
        # Idle channel: the controller converges to the fast floor.
        assert mean_interval < 4.0
        assert min(agent.intervals_used) >= 5.0 / config.max_rate_multiplier

    def test_congested_network_backs_off(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        config = AdaptiveProbingConfig(base_interval_s=5.0)
        agent = AdaptiveProbeAgent(network.sim, network.nodes[0], config)
        agent.start()
        task = PeriodicTask(
            network.sim,
            0.004,
            lambda: network.nodes[1].send_broadcast(
                Packet(PacketKind.DATA, 1, 1400, network.sim.now)
            ),
        )
        task.start()
        network.run(200.0)
        task.stop()
        late = agent.intervals_used[len(agent.intervals_used) // 2:]
        mean_late = sum(late) / len(late)
        assert mean_late > config.base_interval_s  # backed off past base
        assert max(agent.intervals_used) <= (
            config.base_interval_s / config.min_rate_multiplier + 1e-9
        )

    def test_rate_multiplier_bounds(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        config = AdaptiveProbingConfig()
        agent = AdaptiveProbeAgent(network.sim, network.nodes[0], config)
        agent.estimator.utilization = 0.0
        assert agent.current_rate_multiplier() == pytest.approx(
            config.max_rate_multiplier
        )
        agent.estimator.utilization = 1.0
        assert agent.current_rate_multiplier() == pytest.approx(
            config.min_rate_multiplier
        )

    def test_receiver_window_follows_adapted_interval(self):
        """df stays ~1.0 on a clean link even as the cadence changes --
        the probes carry their current interval."""
        network = make_loss_network(2, {link(0, 1): 0.0})
        table = NeighborTable(network.sim, network.nodes[1])
        agent = AdaptiveProbeAgent(network.sim, network.nodes[0])
        agent.start()
        network.run(150.0)
        quality = table.link_quality(0)
        assert quality.forward_delivery_ratio > 0.85

    def test_stop_halts_probing_and_sampling(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        agent = AdaptiveProbeAgent(network.sim, network.nodes[0])
        agent.start()
        network.run(20.0)
        sent = network.nodes[0].counters.get("tx.probe.packets")
        samples = agent.estimator.samples
        agent.stop()
        network.run(60.0)
        assert network.nodes[0].counters.get("tx.probe.packets") == sent
        assert agent.estimator.samples == samples
