"""Tests for markdown report generation."""

from __future__ import annotations

import pytest

from repro.experiments.report import (
    diagnostics_section,
    markdown_table,
    overhead_section,
    render_report,
    throughput_section,
)
from repro.experiments.results import RunResult


def run(protocol, delivered, seed=1, probe_bytes=1000.0, counters=None):
    return RunResult(
        protocol=protocol,
        topology_seed=seed,
        duration_s=100.0,
        offered_packets=1000,
        expected_deliveries=3000,
        delivered_packets=delivered,
        delivered_bytes=delivered * 512,
        mean_delay_s=0.01,
        probe_bytes=probe_bytes,
        counters=counters or {
            "odmrp.data_forwarded": 500.0,
            "odmrp.data_duplicate": 200.0,
            "phy.rx_failed_collision": 50.0,
            "odmrp.query_forwarded": 30.0,
        },
    )


def sample_runs():
    return [
        run("odmrp", 1000, seed=1, probe_bytes=0.0),
        run("odmrp", 1100, seed=2, probe_bytes=0.0),
        run("spp", 1300, seed=1),
        run("spp", 1400, seed=2),
        run("ett", 1200, seed=1, probe_bytes=9000.0),
        run("ett", 1250, seed=2, probe_bytes=9000.0),
    ]


class TestMarkdownTable:
    def test_shape(self):
        table = markdown_table(("a", "b"), [(1, 2), (3, 4)])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_row_mismatch_rejected(self):
        with pytest.raises(ValueError):
            markdown_table(("a", "b"), [(1,)])


class TestSections:
    def test_throughput_section_normalizes(self):
        section = throughput_section(sample_runs(), {"spp": 1.18})
        assert "1.000" in section  # the baseline row
        # spp mean = 1350 / odmrp mean 1050 = 1.286
        assert "1.286" in section
        assert "1.180" in section  # paper column

    def test_overhead_section_excludes_baseline(self):
        section = overhead_section(sample_runs(), {"ett": 3.03})
        assert "odmrp" not in section
        assert "ett" in section and "3.03" in section

    def test_diagnostics_section_lists_counters(self):
        section = diagnostics_section(sample_runs())
        assert "collisions" in section
        assert "500" in section  # data forwarded mean


class TestRenderReport:
    def test_full_report_structure(self):
        report = render_report(
            sample_runs(),
            title="Demo sweep",
            paper_throughput={"spp": 1.18},
            paper_overhead={"ett": 3.03},
        )
        assert report.startswith("# Demo sweep")
        assert "2 topologies" in report
        assert "Normalized throughput" in report
        assert "Probing overhead" in report
        assert "diagnostics" in report

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError):
            render_report([])

    def test_protocol_order_follows_paper(self):
        report = render_report(sample_runs())
        assert report.index("odmrp") < report.index("ett")
        assert report.index("| ett") < report.index("| spp")
