"""Mobility models: deterministic per-tick position generators.

Every model advances node positions in *node-index order* with a fixed
per-tick draw discipline, so a trajectory is fully determined by the
``(model, spec, arena, initial positions, rng stream)`` tuple -- the same
determinism contract every other subsystem honors.  Models draw only
from the RNG stream they are handed (``mobility.<model>`` on the run's
:class:`~repro.sim.rng.RngRegistry`), never from a shared stream, so
enabling mobility cannot perturb fading, MAC backoff, or traffic draws.

Registered models:

``static``
    The no-op model: never moves anything.  Scenarios with
    ``MobilitySpec.model == "static"`` (the default) skip the driver
    entirely, executing the exact pre-mobility instruction stream.
``random-waypoint``
    The classic model: pick a uniform waypoint in the arena, travel to it
    at a uniform speed from ``[speed_min, speed_max]``, pause, repeat.
``gauss-markov``
    Temporally correlated velocity: speed and heading follow AR(1)
    processes with memory ``alpha``; near an arena edge the mean heading
    steers back toward the center, so nodes never escape the arena.
``waypoint-swarm``
    Group mobility: consecutive nodes form swarms of ``swarm_size``
    whose *reference point* follows random-waypoint; members hold fixed
    offsets within ``swarm_radius_m`` of it (the reference-point group
    mobility model).

All models clamp emitted positions to ``[0, width] x [0, height]``, so
the in-bounds invariant holds by construction (property-tested).
"""

from __future__ import annotations

import difflib
import math
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple, Type

from repro.net.topology import Position

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (config -> here)
    import random

    from repro.mobility.config import MobilitySpec

_MODELS: Dict[str, Type["MobilityModel"]] = {}


def register_mobility_model(cls: Type["MobilityModel"]) -> Type["MobilityModel"]:
    """Class decorator adding a model to the registry by its ``name``."""
    if not getattr(cls, "name", None):
        raise ValueError(f"{cls.__name__} declares no model name")
    if cls.name in _MODELS:
        raise ValueError(f"mobility model {cls.name!r} already registered")
    _MODELS[cls.name] = cls
    return cls


def mobility_model_names() -> Tuple[str, ...]:
    """Registered model names, sorted."""
    return tuple(sorted(_MODELS))


def mobility_model_by_name(name: str) -> Type["MobilityModel"]:
    """Resolve a model name, with a did-you-mean on typos."""
    model = _MODELS.get(name)
    if model is not None:
        return model
    message = (
        f"unknown mobility model {name!r}; valid models: "
        + ", ".join(mobility_model_names())
    )
    close = difflib.get_close_matches(str(name), mobility_model_names(), n=1)
    if close:
        message += f" (did you mean {close[0]!r}?)"
    raise ValueError(message)


def build_mobility_model(
    spec: "MobilitySpec",
    width_m: float,
    height_m: float,
    positions: Sequence[Position],
    rng: "random.Random",
) -> "MobilityModel":
    """Instantiate the spec's model over the given arena and placement."""
    return mobility_model_by_name(spec.model)(
        spec, width_m, height_m, positions, rng
    )


class MobilityModel(ABC):
    """Base class: owns positions, arena bounds, and one RNG stream."""

    name = ""

    def __init__(
        self,
        spec: "MobilitySpec",
        width_m: float,
        height_m: float,
        positions: Sequence[Position],
        rng: "random.Random",
    ) -> None:
        self.spec = spec
        self.width_m = float(width_m)
        self.height_m = float(height_m)
        self.positions: List[Position] = list(positions)
        self.rng = rng
        self._last_time = 0.0

    def advance(self, now: float) -> List[Tuple[int, Position]]:
        """Move the clock to ``now``; returns ``(index, position)`` moves.

        The driver calls this once per update interval; ``dt`` is the
        elapsed virtual time since the previous call (or t=0).
        """
        dt = now - self._last_time
        self._last_time = now
        if dt <= 0.0:
            return []
        moved = self._step(dt)
        for index, position in moved:
            self.positions[index] = position
        return moved

    @abstractmethod
    def _step(self, dt: float) -> List[Tuple[int, Position]]:
        """Advance every node by ``dt`` seconds; return the moves."""

    def _clamp(self, x: float, y: float) -> Position:
        return Position(
            min(max(x, 0.0), self.width_m),
            min(max(y, 0.0), self.height_m),
        )


@register_mobility_model
class StaticModel(MobilityModel):
    """The default: nobody moves, nothing is drawn."""

    name = "static"

    def _step(self, dt: float) -> List[Tuple[int, Position]]:
        return []


class _WaypointLeg:
    """One traveler's random-waypoint state (position, target, speed)."""

    __slots__ = ("position", "target", "speed", "pause_left")

    def __init__(self, position: Position) -> None:
        self.position = position
        self.target = position
        self.speed = 0.0
        self.pause_left = 0.0


def _retarget(leg: _WaypointLeg, model: MobilityModel) -> None:
    """Draw a fresh waypoint and travel speed for one leg."""
    spec = model.spec
    rng = model.rng
    leg.target = Position(
        rng.uniform(0.0, model.width_m), rng.uniform(0.0, model.height_m)
    )
    leg.speed = rng.uniform(spec.speed_min_mps, spec.speed_max_mps)


def _advance_leg(leg: _WaypointLeg, dt: float, model: MobilityModel) -> bool:
    """Move one leg by ``dt``; True if its position changed.

    Pauses consume whole ticks (the discrete-tick approximation: a node
    that reaches its waypoint rests for at least ``pause_s``, rounded up
    to the update interval), so at most one waypoint/speed draw happens
    per leg per tick -- the property that keeps stream consumption
    deterministic under any chunking of the run.
    """
    if leg.pause_left > 0.0:
        leg.pause_left = max(0.0, leg.pause_left - dt)
        return False
    position = leg.position
    target = leg.target
    remaining = position.distance_to(target)
    step = leg.speed * dt
    if step >= remaining:
        leg.position = target
        leg.pause_left = model.spec.pause_s
        _retarget(leg, model)
        return remaining > 0.0
    scale = step / remaining
    leg.position = model._clamp(
        position.x + (target.x - position.x) * scale,
        position.y + (target.y - position.y) * scale,
    )
    return True


@register_mobility_model
class RandomWaypointModel(MobilityModel):
    """Independent random-waypoint travel for every node."""

    name = "random-waypoint"

    def __init__(self, spec, width_m, height_m, positions, rng) -> None:
        super().__init__(spec, width_m, height_m, positions, rng)
        self._legs: List[_WaypointLeg] = []
        for position in self.positions:  # index order: draw determinism
            leg = _WaypointLeg(position)
            _retarget(leg, self)
            self._legs.append(leg)

    def _step(self, dt: float) -> List[Tuple[int, Position]]:
        moved: List[Tuple[int, Position]] = []
        for index, leg in enumerate(self._legs):
            if _advance_leg(leg, dt, self):
                moved.append((index, leg.position))
        return moved


@register_mobility_model
class GaussMarkovModel(MobilityModel):
    """AR(1)-correlated speed and heading (the Gauss-Markov model).

    Per tick, each node updates ``v`` and ``theta`` as

        ``v     = a v     + (1-a) v_mean  + sqrt(1-a^2) sigma_v z1``
        ``theta = a theta + (1-a) th_mean + sqrt(1-a^2) sigma_th z2``

    with ``a = spec.alpha``.  Near an arena edge (within one mean travel
    distance) the node's mean heading is re-aimed at the arena center --
    the standard boundary treatment -- and emitted positions are clamped
    to the arena, so trajectories never leave it.
    """

    name = "gauss-markov"

    #: Heading innovation scale (radians); pi/4 gives visible but
    #: temporally smooth turning at alpha ~0.75.
    _DIR_SIGMA = math.pi / 4.0

    def __init__(self, spec, width_m, height_m, positions, rng) -> None:
        super().__init__(spec, width_m, height_m, positions, rng)
        self._mean_speed = 0.5 * (spec.speed_min_mps + spec.speed_max_mps)
        self._speed_sigma = max(
            0.25 * (spec.speed_max_mps - spec.speed_min_mps), 1e-3
        )
        self._speeds = [self._mean_speed] * len(self.positions)
        self._headings = [
            rng.uniform(0.0, 2.0 * math.pi) for _ in self.positions
        ]
        self._mean_headings = list(self._headings)

    def _step(self, dt: float) -> List[Tuple[int, Position]]:
        spec = self.spec
        rng = self.rng
        alpha = spec.alpha
        blend = 1.0 - alpha
        noise = math.sqrt(max(0.0, 1.0 - alpha * alpha))
        margin = max(self._mean_speed * dt * 2.0, 1e-9)
        center_x = 0.5 * self.width_m
        center_y = 0.5 * self.height_m
        moved: List[Tuple[int, Position]] = []
        for index, position in enumerate(self.positions):
            speed = (
                alpha * self._speeds[index]
                + blend * self._mean_speed
                + noise * self._speed_sigma * rng.gauss(0.0, 1.0)
            )
            speed = min(max(speed, 0.0), spec.speed_max_mps)
            heading = (
                alpha * self._headings[index]
                + blend * self._mean_headings[index]
                + noise * self._DIR_SIGMA * rng.gauss(0.0, 1.0)
            )
            x = position.x + speed * math.cos(heading) * dt
            y = position.y + speed * math.sin(heading) * dt
            clamped = self._clamp(x, y)
            near_edge = (
                clamped.x < margin
                or clamped.y < margin
                or clamped.x > self.width_m - margin
                or clamped.y > self.height_m - margin
            )
            if near_edge:
                # Steer the mean heading back toward the arena center so
                # the AR(1) pull points inward on the next ticks.
                self._mean_headings[index] = math.atan2(
                    center_y - clamped.y, center_x - clamped.x
                )
            self._speeds[index] = speed
            self._headings[index] = heading
            if clamped != position:
                moved.append((index, clamped))
        return moved


@register_mobility_model
class WaypointSwarmModel(MobilityModel):
    """Reference-point group mobility over random-waypoint leaders.

    Consecutive node indices form swarms of ``spec.swarm_size``; each
    swarm's invisible reference point travels random-waypoint, and every
    member keeps a fixed offset (drawn once, uniform in the
    ``swarm_radius_m`` disk) from it.  Members are clamped to the arena,
    so a swarm hugging a wall flattens against it instead of escaping.
    """

    name = "waypoint-swarm"

    def __init__(self, spec, width_m, height_m, positions, rng) -> None:
        super().__init__(spec, width_m, height_m, positions, rng)
        size = spec.swarm_size
        self._groups: List[Tuple[_WaypointLeg, List[int]]] = []
        self._offsets: List[Tuple[float, float]] = [(0.0, 0.0)] * len(
            self.positions
        )
        for start in range(0, len(self.positions), size):
            members = list(range(start, min(start + size, len(self.positions))))
            leg = _WaypointLeg(self.positions[start])
            _retarget(leg, self)
            for index in members:
                # sqrt keeps the offsets uniform over the disk's area.
                radius = spec.swarm_radius_m * math.sqrt(rng.random())
                angle = rng.uniform(0.0, 2.0 * math.pi)
                self._offsets[index] = (
                    radius * math.cos(angle), radius * math.sin(angle)
                )
            self._groups.append((leg, members))

    def _step(self, dt: float) -> List[Tuple[int, Position]]:
        moved: List[Tuple[int, Position]] = []
        for leg, members in self._groups:
            if not _advance_leg(leg, dt, self):
                continue
            reference = leg.position
            for index in members:
                dx, dy = self._offsets[index]
                position = self._clamp(reference.x + dx, reference.y + dy)
                if position != self.positions[index]:
                    moved.append((index, position))
        return moved
