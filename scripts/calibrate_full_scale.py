"""Full paper-scale calibration run.

Runs the Section 4 simulation comparison (50 nodes, 400 s, 10 topologies)
and the Section 5 testbed comparison (400 s, 5 seeds), printing the
Figure 2 columns and Table 1 next to the paper's numbers.

The simulation sweep fans out across worker processes (``--jobs``,
default one per CPU) and reuses the on-disk result cache, so a re-run
after a config tweak only recomputes the runs the tweak touched; pass
``--no-cache`` after *code* changes (the cache key covers config fields,
not source).  Serially this sweep takes tens of minutes; see
``results_full_scale.log`` for a pre-parallel trace.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.tables import render_comparison
from repro.experiments import figures
from repro.experiments.parallel import execute_runs_detailed, sweep_specs
from repro.experiments.results import aggregate_runs, normalized_metric_table
from repro.experiments.scenarios import (
    PROTOCOL_NAMES,
    SimulationScenarioConfig,
)


def log(message: str) -> None:
    print(f"[{time.strftime('%H:%M:%S')}] {message}", flush=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes (0 = one per CPU)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and bypass the on-disk result cache")
    parser.add_argument("--topologies", type=int, default=10,
                        help="random topologies (paper: 10)")
    args = parser.parse_args(argv)

    seeds = tuple(range(1, args.topologies + 1))
    log(f"simulation sweep: seeds {seeds}, jobs={args.jobs or 'auto'}")
    specs = sweep_specs(SimulationScenarioConfig(), PROTOCOL_NAMES, seeds)
    wall_start = time.time()
    outcomes = execute_runs_detailed(
        specs, jobs=args.jobs, use_cache=not args.no_cache
    )
    runs = []
    for outcome in outcomes:
        result = outcome.result
        if outcome.failed:
            log(
                f"seed {outcome.spec.seed} {result.protocol:6s} FAILED:\n"
                f"{result.error}"
            )
            continue
        source = "cache" if outcome.from_cache else f"{outcome.elapsed_s:.0f}s"
        log(
            f"seed {outcome.spec.seed} {result.protocol:6s} "
            f"pdr={result.packet_delivery_ratio:.3f} "
            f"delay={result.mean_delay_s or -1:.4f} "
            f"ovh={result.probe_overhead_pct:.2f}% ({source})"
        )
        runs.append(result)
    log(f"sweep wall-clock: {time.time() - wall_start:.0f}s "
        f"({len(runs)}/{len(specs)} runs ok)")
    if not runs:
        log("every run failed; nothing to aggregate")
        return 1

    aggregates = aggregate_runs(runs)
    throughput = normalized_metric_table(aggregates, "throughput")
    delay = normalized_metric_table(aggregates, "delay")
    print(render_comparison(
        throughput, figures.PAPER_THROUGHPUT_SIMULATIONS,
        title="== Figure 2: Throughput-simulations =="))
    print(render_comparison(
        delay, figures.PAPER_DELAY, title="== Figure 2: Delay =="))
    overhead = {
        name: agg.mean_probe_overhead_pct
        for name, agg in aggregates.items() if name != "odmrp"
    }
    print(render_comparison(
        overhead, figures.PAPER_TABLE1_OVERHEAD_PCT,
        value_label="overhead %",
        title="== Table 1: probing overhead =="))

    log("testbed sweep")
    testbed = figures.figure2_throughput_testbed()
    print(render_comparison(
        testbed.measured, testbed.paper,
        title="== Figure 2: Throughput-testbed =="))
    log("done")
    return 0


if __name__ == "__main__":
    sys.exit(main())
