"""Run protocol variants across topologies and collect results.

Environment knobs (read by the benchmark suite, not by this module) allow
paper-scale runs; the functions here are pure: everything comes in via the
config object.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from repro.experiments.results import RunResult
from repro.experiments.scenarios import (
    PROTOCOL_NAMES,
    SimulationScenario,
    SimulationScenarioConfig,
    build_simulation_scenario,
)

ProgressCallback = Callable[[str, int], None]


def run_protocol(
    protocol_name: str,
    config: Optional[SimulationScenarioConfig] = None,
) -> RunResult:
    """Build, run, and measure one protocol on one topology."""
    scenario = build_simulation_scenario(protocol_name, config)
    scenario.run()
    return collect_result(scenario)


def collect_result(scenario: SimulationScenario) -> RunResult:
    """Extract a :class:`RunResult` from a finished scenario."""
    probe_bytes = (
        scenario.probing.probe_bytes_sent()
        if scenario.probing is not None
        else 0.0
    )
    interesting_prefixes = ("odmrp.", "phy.", "tx.", "channel.")
    counters = {}
    for node in scenario.network.nodes:
        for name, value in node.counters.as_dict().items():
            if name.startswith(interesting_prefixes):
                counters[name] = counters.get(name, 0.0) + value
    for name, value in scenario.network.channel.counters.as_dict().items():
        counters[name] = counters.get(name, 0.0) + value
    sink = scenario.sink
    seed = getattr(
        scenario.config, "topology_seed", None
    )
    if seed is None:
        seed = getattr(scenario.config, "run_seed", 0)
    return RunResult(
        protocol=scenario.protocol_name,
        topology_seed=seed,
        duration_s=scenario.config.duration_s,
        offered_packets=scenario.offered_packets(),
        expected_deliveries=scenario.expected_deliveries(),
        delivered_packets=sink.total_packets,
        delivered_bytes=sink.total_bytes,
        mean_delay_s=sink.mean_delay_s(),
        probe_bytes=probe_bytes,
        counters=counters,
    )


def compare_protocols(
    config: Optional[SimulationScenarioConfig] = None,
    protocols: Sequence[str] = PROTOCOL_NAMES,
    topology_seeds: Iterable[int] = (1,),
    progress: Optional[ProgressCallback] = None,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: Optional[str] = None,
) -> List[RunResult]:
    """The paper's comparison loop: every protocol on every topology.

    ``jobs`` fans the (protocol, seed) grid out across worker processes
    (``jobs<=0`` means one per CPU); every run is seed-deterministic, so
    the returned list is identical to the serial one in both order and
    content.  ``use_cache`` replays unchanged runs from the on-disk
    result cache (see :mod:`repro.experiments.parallel` for the key and
    its invalidation rule).

    Regardless of ``jobs``, a run that raises comes back as an
    error-annotated :class:`RunResult` (``result.error`` holds the
    traceback) rather than aborting the sweep; ``jobs=1`` runs inline
    with no pool and no pickling requirement on the config.
    """
    if config is None:
        config = SimulationScenarioConfig()

    from repro.experiments.parallel import execute_runs, sweep_specs

    specs = sweep_specs(config, tuple(protocols), tuple(topology_seeds))
    return execute_runs(
        specs, jobs=jobs, use_cache=use_cache, cache_dir=cache_dir,
        progress=progress,
    )
