"""Full paper-scale calibration run.

Runs the Section 4 simulation comparison (50 nodes, 400 s, 10 topologies)
and the Section 5 testbed comparison (400 s, 5 seeds), printing the
Figure 2 columns and Table 1 next to the paper's numbers.  Takes tens of
minutes; the benchmark suite runs scaled-down versions of the same code.
"""

from __future__ import annotations

import sys
import time

from repro.analysis.tables import render_comparison
from repro.experiments import figures
from repro.experiments.results import aggregate_runs, normalized_metric_table


def log(message: str) -> None:
    print(f"[{time.strftime('%H:%M:%S')}] {message}", flush=True)


def main() -> None:
    seeds = tuple(range(1, 11))
    log(f"simulation sweep: seeds {seeds}")
    runs = []
    from dataclasses import replace

    from repro.experiments.runner import run_protocol
    from repro.experiments.scenarios import (
        PROTOCOL_NAMES,
        SimulationScenarioConfig,
    )

    config = SimulationScenarioConfig()
    for seed in seeds:
        for protocol in PROTOCOL_NAMES:
            start = time.time()
            result = run_protocol(protocol, replace(config, topology_seed=seed))
            log(
                f"seed {seed} {protocol:6s} pdr={result.packet_delivery_ratio:.3f} "
                f"delay={result.mean_delay_s or -1:.4f} "
                f"ovh={result.probe_overhead_pct:.2f}% "
                f"({time.time() - start:.0f}s)"
            )
            runs.append(result)

    aggregates = aggregate_runs(runs)
    throughput = normalized_metric_table(aggregates, "throughput")
    delay = normalized_metric_table(aggregates, "delay")
    print(render_comparison(
        throughput, figures.PAPER_THROUGHPUT_SIMULATIONS,
        title="== Figure 2: Throughput-simulations =="))
    print(render_comparison(
        delay, figures.PAPER_DELAY, title="== Figure 2: Delay =="))
    overhead = {
        name: agg.mean_probe_overhead_pct
        for name, agg in aggregates.items() if name != "odmrp"
    }
    print(render_comparison(
        overhead, figures.PAPER_TABLE1_OVERHEAD_PCT,
        value_label="overhead %",
        title="== Table 1: probing overhead =="))

    log("testbed sweep")
    testbed = figures.figure2_throughput_testbed()
    print(render_comparison(
        testbed.measured, testbed.paper,
        title="== Figure 2: Throughput-testbed =="))
    log("done")


if __name__ == "__main__":
    sys.exit(main())
