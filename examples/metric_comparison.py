"""Compare all five link-quality metrics against original ODMRP.

Reproduces the shape of Figure 2 (throughput + delay columns) and
Table 1 (probing overhead) at reduced scale, printing measured values
next to the paper's.

Run:  python examples/metric_comparison.py [num_topologies]
"""

from __future__ import annotations

import sys

from repro.analysis.tables import render_comparison
from repro.experiments import figures
from repro.experiments.results import aggregate_runs, normalized_metric_table
from repro.experiments.scenarios import SimulationScenarioConfig


def main() -> None:
    topologies = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    config = SimulationScenarioConfig(
        num_nodes=30,
        members_per_group=6,
        duration_s=150.0,
        warmup_s=30.0,
    )
    seeds = tuple(range(1, topologies + 1))
    print(
        f"Running 6 protocols x {topologies} topologies "
        f"({config.num_nodes} nodes, {config.duration_s:.0f} s each) ..."
    )
    runs = figures.simulation_sweep(config, seeds)
    aggregates = aggregate_runs(runs)

    throughput = normalized_metric_table(aggregates, "throughput")
    print()
    print(render_comparison(
        throughput,
        figures.PAPER_THROUGHPUT_SIMULATIONS,
        title="Figure 2 / Throughput-simulations (normalized to ODMRP)",
    ))

    delay = normalized_metric_table(aggregates, "delay")
    print()
    print(render_comparison(
        delay,
        figures.PAPER_DELAY,
        title="Figure 2 / Delay (normalized to ODMRP; paper values approximate)",
    ))

    overhead = {
        name: agg.mean_probe_overhead_pct
        for name, agg in aggregates.items()
        if name != "odmrp"
    }
    print()
    print(render_comparison(
        overhead,
        figures.PAPER_TABLE1_OVERHEAD_PCT,
        value_label="overhead %",
        title="Table 1 / probing overhead (probe bytes / data bytes received)",
    ))
    print(
        "\nShape to look for: every metric beats ODMRP; SPP and PP lead; "
        "packet-pair metrics (ETT, PP) cost ~4-5x the probe bytes of the "
        "single-probe metrics (ETX, METX, SPP)."
    )


if __name__ == "__main__":
    main()
