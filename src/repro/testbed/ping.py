"""Ping-based link classification (how the authors drew Figure 4).

Section 5.3: "we transfered a series of ping messages between each pair
of nodes.  The number of packets lost during the ping exchange gave us an
idea of the quality of the link."  This module reproduces that
measurement over the emulated testbed: every node broadcasts a series of
ping packets; each receiver counts what it hears per neighbor; links are
classified lossy when the measured loss crosses a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from repro.net.network import Network
from repro.net.packet import Packet, PacketKind
from repro.sim.process import PeriodicTask


@dataclass(frozen=True)
class LinkClassification:
    """Measured loss and verdict for one (directed) link."""

    loss_rate: float
    lossy: bool


def classify_links_by_ping(
    network: Network,
    pings_per_node: int = 100,
    ping_interval_s: float = 0.2,
    ping_size_bytes: int = 64,
    lossy_threshold: float = 0.25,
) -> Dict[Tuple[int, int], LinkClassification]:
    """Measure every directed link by broadcast pings and classify it.

    Returns ``{(sender, receiver): LinkClassification}`` for every link
    where at least one ping got through.  The network must be freshly
    built (no other protocol handlers registered for PING).
    """
    if pings_per_node <= 0:
        raise ValueError("need at least one ping per node")
    received: Dict[Tuple[int, int], int] = {}

    def make_handler(receiver_id: int):
        def handler(packet: Packet, sender_id: int, rx_power_mw: float) -> None:
            key = (sender_id, receiver_id)
            received[key] = received.get(key, 0) + 1

        return handler

    for node in network.nodes:
        node.register_handler(PacketKind.PING, make_handler(node.node_id))

    tasks = []
    for node in network.nodes:

        def send_ping(sender=node) -> None:
            packet = Packet(
                kind=PacketKind.PING,
                origin=sender.node_id,
                size_bytes=ping_size_bytes,
                created_at=network.sim.now,
            )
            sender.send_broadcast(packet)

        task = PeriodicTask(network.sim, ping_interval_s, send_ping)
        # Stagger nodes across the interval to avoid synchronized floods.
        task.start(
            initial_delay=ping_interval_s * node.node_id / len(network.nodes)
        )
        tasks.append(task)

    network.run(until=network.sim.now + pings_per_node * ping_interval_s + 1.0)
    for task in tasks:
        task.stop()

    classifications: Dict[Tuple[int, int], LinkClassification] = {}
    for (sender_id, receiver_id), count in sorted(received.items()):
        loss = 1.0 - min(1.0, count / pings_per_node)
        classifications[(sender_id, receiver_id)] = LinkClassification(
            loss_rate=loss, lossy=loss >= lossy_threshold
        )
    return classifications


def symmetric_classification(
    directed: Dict[Tuple[int, int], LinkClassification],
) -> Dict[FrozenSet[int], LinkClassification]:
    """Merge the two directions of each link (worst loss wins)."""
    merged: Dict[FrozenSet[int], LinkClassification] = {}
    for (sender, receiver), verdict in directed.items():
        key = frozenset((sender, receiver))
        existing = merged.get(key)
        if existing is None or verdict.loss_rate > existing.loss_rate:
            merged[key] = verdict
    return merged
