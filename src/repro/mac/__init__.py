"""Link layer: CSMA/CA with the 802.11 broadcast/unicast asymmetry.

The paper's whole argument rests on how 802.11 treats multicast data:
broadcast frames get no RTS/CTS, no ACK, and no retransmission, while
unicast frames are acknowledged and retried.  :mod:`repro.mac.csma`
implements both transmission services over the shared channel so the
asymmetry is a measured property of the substrate, not an assumption.
"""

from repro.mac.csma import CsmaMac, MacConfig
from repro.mac.frames import FrameTimings, frame_airtime_s

__all__ = ["CsmaMac", "MacConfig", "FrameTimings", "frame_airtime_s"]
