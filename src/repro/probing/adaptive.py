"""Adaptive probing rate (future work: "the optimal probing rate").

Section 4.2.2 exposes the tradeoff: faster probing gives fresher link
estimates but interferes with data traffic; the paper measures ~-2%
throughput at 5x probing and ~+3% at 0.1x, and leaves finding the right
rate to future work.

This module closes that loop with a simple congestion-responsive
controller: each node samples its carrier-sense state, keeps an EWMA of
channel utilization, and scales its probing interval between a fast
floor (idle channel: probes are cheap, take fresh measurements) and a
slow ceiling (busy channel: probes cost throughput, back off).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.node import Node
from repro.probing.broadcast_probe import BroadcastProbeAgent
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority
from repro.sim.process import PeriodicTask


@dataclass
class AdaptiveProbingConfig:
    """Controller tuning.

    With the defaults, a fully idle channel probes at ``2x`` the base
    rate and a saturated one at ``0.25x`` -- inside the band the paper
    explored (0.1x .. 5x).
    """

    base_interval_s: float = 5.0
    utilization_sample_interval_s: float = 0.1
    utilization_ewma_weight: float = 0.95
    #: Rate multiplier when the channel is fully idle.
    max_rate_multiplier: float = 2.0
    #: Rate multiplier when the channel is fully busy.
    min_rate_multiplier: float = 0.25
    #: Utilization at/above which the controller is fully backed off.
    saturation_utilization: float = 0.5

    def __post_init__(self) -> None:
        if self.base_interval_s <= 0:
            raise ValueError("base interval must be positive")
        if not 0.0 < self.utilization_ewma_weight < 1.0:
            raise ValueError("EWMA weight must be in (0, 1)")
        if self.min_rate_multiplier <= 0:
            raise ValueError("min rate multiplier must be positive")
        if self.max_rate_multiplier < self.min_rate_multiplier:
            raise ValueError("max rate must be at least min rate")
        if not 0.0 < self.saturation_utilization <= 1.0:
            raise ValueError("saturation utilization must be in (0, 1]")


class ChannelUtilizationEstimator:
    """EWMA of the fraction of time the node senses the medium busy."""

    def __init__(
        self, sim: Simulator, node: Node, config: AdaptiveProbingConfig
    ) -> None:
        self.sim = sim
        self.node = node
        self.config = config
        self.utilization = 0.0
        self.samples = 0
        self._task = PeriodicTask(
            sim,
            config.utilization_sample_interval_s,
            self._sample,
            priority=EventPriority.STATS,
        )

    def start(self) -> None:
        self._task.start()

    def stop(self) -> None:
        self._task.stop()

    def _sample(self) -> None:
        busy = 1.0 if self.node.medium_busy else 0.0
        w = self.config.utilization_ewma_weight
        self.utilization = w * self.utilization + (1.0 - w) * busy
        self.samples += 1


class AdaptiveProbeAgent(BroadcastProbeAgent):
    """A broadcast prober whose interval tracks channel utilization.

    The rate multiplier interpolates linearly from
    ``max_rate_multiplier`` at zero utilization down to
    ``min_rate_multiplier`` at ``saturation_utilization`` (and stays
    there above it).  The interval is re-evaluated before every probe,
    so the controller reacts within one probing period.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        config: AdaptiveProbingConfig | None = None,
        probe_size_bytes: int = 61,
    ) -> None:
        self.adaptive_config = config or AdaptiveProbingConfig()
        super().__init__(
            sim,
            node,
            interval_s=self.adaptive_config.base_interval_s,
            probe_size_bytes=probe_size_bytes,
        )
        self.estimator = ChannelUtilizationEstimator(
            sim, node, self.adaptive_config
        )
        self.intervals_used: list[float] = []

    def start(self) -> None:
        self.estimator.start()
        super().start()

    def stop(self) -> None:
        self.estimator.stop()
        super().stop()

    def current_rate_multiplier(self) -> float:
        """Probing-rate multiplier for the current channel utilization."""
        config = self.adaptive_config
        utilization = min(
            1.0, self.estimator.utilization / config.saturation_utilization
        )
        return (
            config.max_rate_multiplier
            + (config.min_rate_multiplier - config.max_rate_multiplier)
            * utilization
        )

    def _send_probe(self) -> None:
        interval = (
            self.adaptive_config.base_interval_s
            / self.current_rate_multiplier()
        )
        self.intervals_used.append(interval)
        self._task.set_interval(interval)
        # Receivers size their expected-probe window from the interval
        # carried in the probe, so it must track the adapted cadence.
        self.interval_s = interval
        super()._send_probe()
