"""Network substrate: packets, nodes, the shared wireless channel, topology.

* :mod:`repro.net.packet` -- packet model and kinds.
* :mod:`repro.net.topology` -- node placement generators.
* :mod:`repro.net.channel` -- the shared broadcast medium.
* :mod:`repro.net.node` -- a mesh router: radio + MAC + protocol dispatch.
* :mod:`repro.net.network` -- wiring helper that assembles a whole network.
"""

from repro.net.channel import Transmission, WirelessChannel
from repro.net.network import Network, NetworkConfig
from repro.net.node import Node, BROADCAST_ID
from repro.net.packet import Packet, PacketKind
from repro.net.topology import (
    Position,
    chain_topology,
    grid_topology,
    random_topology,
)

__all__ = [
    "Packet",
    "PacketKind",
    "Node",
    "BROADCAST_ID",
    "WirelessChannel",
    "Transmission",
    "Network",
    "NetworkConfig",
    "Position",
    "random_topology",
    "grid_topology",
    "chain_topology",
]
