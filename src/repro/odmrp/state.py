"""Per-node ODMRP state: query rounds, forwarding-group flags, dedup.

Kept separate from the protocol logic so tests can drive the state
machines directly and so the MAODV extension can reuse the caches.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, List, Optional


class QueryRoundState:
    """Everything a node remembers about one (source, sequence) flood."""

    __slots__ = (
        "group_id",
        "source_id",
        "sequence",
        "first_rx_time",
        "best_cost",
        "best_upstream",
        "best_hop_count",
        "alpha_deadline",
        "last_forwarded_cost",
        "forward_pending",
        "reply_pending",
        "replied",
    )

    def __init__(
        self,
        group_id: int,
        source_id: int,
        sequence: int,
        first_rx_time: float,
        best_cost: float,
        best_upstream: int,
        best_hop_count: int,
        alpha_deadline: float,
    ) -> None:
        self.group_id = group_id
        self.source_id = source_id
        self.sequence = sequence
        self.first_rx_time = first_rx_time
        self.best_cost = best_cost
        self.best_upstream = best_upstream
        self.best_hop_count = best_hop_count
        self.alpha_deadline = alpha_deadline
        self.last_forwarded_cost: Optional[float] = None
        self.forward_pending = False
        self.reply_pending = False
        self.replied = False


class DuplicateCache:
    """Bounded FIFO set for duplicate suppression.

    ``check_and_add`` returns True exactly once per key; the bound keeps
    long runs from growing memory without risking false "new" verdicts on
    the recent past (the eviction horizon is far larger than any
    plausible in-flight duplication window).
    """

    def __init__(self, max_entries: int = 50_000) -> None:
        if max_entries <= 0:
            raise ValueError("cache must hold at least one entry")
        self.max_entries = max_entries
        self._seen: set = set()
        self._order: Deque[Hashable] = deque()

    def check_and_add(self, key: Hashable) -> bool:
        """True if ``key`` is new (and record it); False for duplicates."""
        if key in self._seen:
            return False
        self._seen.add(key)
        self._order.append(key)
        if len(self._order) > self.max_entries:
            oldest = self._order.popleft()
            self._seen.discard(oldest)
        return True

    def __contains__(self, key: Hashable) -> bool:
        return key in self._seen

    def __len__(self) -> int:
        return len(self._seen)


class ForwardingGroupState:
    """FG_FLAG per group, with expiry.

    Forwarding-group membership is per *group*, not per source -- the
    property behind the multi-source redundancy effect of Section 4.3.
    """

    def __init__(self) -> None:
        self._expiry: Dict[int, float] = {}

    def refresh(self, group_id: int, until: float) -> None:
        current = self._expiry.get(group_id, float("-inf"))
        if until > current:
            self._expiry[group_id] = until

    def is_active(self, group_id: int, now: float) -> bool:
        expiry = self._expiry.get(group_id)
        return expiry is not None and expiry > now

    def active_groups(self, now: float) -> List[int]:
        return sorted(
            group for group, expiry in self._expiry.items() if expiry > now
        )

    def expiry_of(self, group_id: int) -> Optional[float]:
        return self._expiry.get(group_id)

    def expiries(self) -> Dict[int, float]:
        """group -> expiry time for every group ever refreshed (a copy)."""
        return dict(self._expiry)
