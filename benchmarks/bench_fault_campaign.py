"""Fault-campaign benchmark: rare-event runs saved vs uniform sampling.

Measures what the importance-sampled fault planner
(:mod:`repro.experiments.campaigns`) buys on the estimate the ISSUE's
robustness verdict hangs on: P[delivery < ``tail_fraction`` x the
fault-free baseline] under the nominal (mild-biased) fault world.  The
tail is tuned genuinely rare (p ~ 0.5 %), so nominal Monte Carlo burns
~1/p draws per observed event while the severe-tilted defensive
mixture lands a quarter of its draws in the tail and re-weights them
back.  The row records three things, gated in order:

* **correctness** -- re-running one campaign with ``--resume`` against
  its journal must reproduce the sampled plan (thetas, weights, fault
  digests) and every run bit for bit;
* **health** -- every replicate's importance weights must pass the ESS
  degeneracy sentinels, and a uniform-sampling sanity arm must agree
  with the pooled importance estimate within 3 sigma;
* **savings** -- the empirical variance of the importance estimator
  across replicate campaigns, against the analytical binomial variance
  ``p(1-p)/draws`` of nominal Monte Carlo (the exact sampling variance
  of the ``importance = false`` arm), must show the campaign reaching
  any target CI half-width with at least 3x fewer runs.

Everything is a pure function of the fixed master seeds, so the row is
reproducible bit for bit.  Results land in the ``fault_campaign``
section of ``BENCH_perf.json``.  Run via pytest
(``pytest benchmarks/bench_fault_campaign.py -s``) or directly
(``PYTHONPATH=src python benchmarks/bench_fault_campaign.py``).
Scale knobs: ``REPRO_JOBS`` (pool size), ``REPRO_CAMPAIGN_REPLICATES``
(importance-arm replicate count).
"""

from __future__ import annotations

import math
import os
import tempfile
import time
from statistics import mean, pvariance

from bench_perf_engine import _env_int, _write_report
from repro.experiments.campaigns import (
    CampaignConfig,
    FaultGeneratorSpec,
    run_campaign_experiment,
)
from repro.experiments.scenarios import SimulationScenarioConfig
from repro.experiments.spec import ExperimentSpec

#: Mid-sized mesh, short runs: cheap enough that a replicate campaign
#: is ~50 simulations, sparse enough that a severe fault draw actually
#: collapses delivery (a dense mesh routes around anything).
CAMPAIGN_CONFIG = SimulationScenarioConfig(
    num_nodes=16,
    area_width_m=650.0,
    area_height_m=650.0,
    num_groups=1,
    members_per_group=5,
    duration_s=20.0,
    warmup_s=4.0,
)

#: Aggressive generators (up to 80 % of nodes, outages up to 90 % of
#: the traffic interval at severity 1) so the nominal tail event --
#: relative delivery below TAIL_FRACTION -- is reachable but rare.
GENERATORS = tuple(
    FaultGeneratorSpec(
        kind=kind, max_node_fraction=0.8, max_outage_fraction=0.9
    )
    for kind in ("storm", "regional", "flapping", "ramp")
)

PROTOCOL = "odmrp"
SEEDS = (1, 2)
DRAWS = 24
TAIL_FRACTION = 0.35


def _campaign_spec(importance: bool, master_seed: int, jobs: int,
                   draws: int = DRAWS) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"bench-campaign-{'is' if importance else 'mc'}-{master_seed}",
        protocols=(PROTOCOL,),
        seeds=SEEDS,
        jobs=jobs,
        campaign=CampaignConfig(
            draws=draws,
            master_seed=master_seed,
            nominal_shape=3.0,
            proposal_shape=3.0,
            importance=importance,
            tail_fraction=TAIL_FRACTION,
            generators=GENERATORS,
        ),
        config=CAMPAIGN_CONFIG,
    )


def bench_campaign_vs_uniform() -> None:
    jobs = _env_int("REPRO_JOBS", 4) or (os.cpu_count() or 1)
    replicates = _env_int("REPRO_CAMPAIGN_REPLICATES", 6)
    assert replicates >= 2, "need >= 2 replicates for an empirical variance"

    # Gate 1: --resume against the journal replays the identical
    # sampled plan (weights included) and runs, bit for bit.
    with tempfile.TemporaryDirectory(prefix="repro-bench-campaign-") as tmp:
        journal = os.path.join(tmp, "journal.jsonl")
        spec = _campaign_spec(True, 1, jobs)
        start = time.perf_counter()
        first = run_campaign_experiment(spec, journal_path=journal)
        wall_campaign = time.perf_counter() - start
        start = time.perf_counter()
        resumed = run_campaign_experiment(
            spec, journal_path=journal, resume=True
        )
        wall_resume = time.perf_counter() - start
        assert resumed.plan_dict() == first.plan_dict(), (
            "resumed campaign plan diverged from the first pass"
        )
        assert resumed.runs == first.runs, (
            "resumed campaign runs diverged from the first pass"
        )

    # The importance arm: replicate campaigns on distinct master seeds.
    estimates, ess_values = [], []
    start = time.perf_counter()
    for master_seed in range(1, replicates + 1):
        result = (
            first if master_seed == 1
            else run_campaign_experiment(_campaign_spec(
                True, master_seed, jobs
            ))
        )
        probability, _ci = result.tail_probability(PROTOCOL)
        diagnostics = result.weight_diagnostics()
        # Gate 2a: the defensive mixture keeps every replicate healthy.
        assert not diagnostics.degenerate, (
            f"importance weights degenerate at master_seed={master_seed}: "
            f"ESS {diagnostics.ess:.1f}/{diagnostics.n}"
        )
        estimates.append(probability)
        ess_values.append(diagnostics.ess)
    wall_replicates = wall_campaign + time.perf_counter() - start

    pooled = mean(estimates)
    assert pooled > 0.0, (
        "no replicate observed the tail event; the scenario no longer "
        "reaches it and the benchmark needs retuning"
    )
    variance_importance = pvariance(estimates)
    assert variance_importance > 0.0, (
        "replicate estimates are all identical; empirical variance "
        "cannot anchor the comparison"
    )
    # Nominal Monte Carlo's sampling variance for a Bernoulli tail at
    # the same per-campaign draw count is exactly p(1-p)/n -- no need
    # to estimate what is known in closed form.
    variance_uniform = pooled * (1.0 - pooled) / DRAWS

    # Gate 2b: the uniform arm (importance = false), run once at double
    # the draw budget, must agree with the pooled importance estimate
    # within 3 sigma of its own binomial noise -- the unbiasedness
    # cross-check (with p ~ 0.5 % it typically sees zero events).
    mc_draws = 2 * DRAWS
    start = time.perf_counter()
    uniform = run_campaign_experiment(_campaign_spec(
        False, 101, jobs, draws=mc_draws
    ))
    wall_uniform = time.perf_counter() - start
    uniform_probability, _ci = uniform.tail_probability(PROTOCOL)
    assert all(weight == 1.0 for weight in uniform.weights())
    sigma = math.sqrt(pooled * (1.0 - pooled) / mc_draws)
    assert abs(uniform_probability - pooled) <= 3.0 * sigma, (
        f"uniform arm estimate {uniform_probability:.4f} is inconsistent "
        f"with the pooled importance estimate {pooled:.4f} "
        f"(3 sigma = {3 * sigma:.4f})"
    )

    # Gate 3: runs-to-target-CI savings.  Variance scales as 1/n, so
    # the equal-n variance ratio IS the ratio of runs each sampler
    # needs to reach any given CI half-width on the tail estimate.
    savings = variance_uniform / variance_importance
    assert savings >= 3.0, (
        f"importance sampling saved only {savings:.2f}x over uniform "
        f"fault sampling (var {variance_importance:.3e} vs "
        f"{variance_uniform:.3e}); need >= 3x"
    )

    _write_report("fault_campaign", {
        "protocol": PROTOCOL,
        "num_nodes": CAMPAIGN_CONFIG.num_nodes,
        "duration_s": CAMPAIGN_CONFIG.duration_s,
        "seeds": list(SEEDS),
        "draws_per_campaign": DRAWS,
        "tail_fraction": TAIL_FRACTION,
        "nominal_shape": 3.0,
        "proposal_shape": 3.0,
        "replicates": replicates,
        "jobs": jobs,
        "tail_probability": round(pooled, 6),
        "replicate_estimates": [round(p, 6) for p in estimates],
        "ess_mean": round(mean(ess_values), 2),
        "variance_importance": variance_importance,
        "variance_uniform": variance_uniform,
        "runs_saved_factor": round(savings, 2),
        "uniform_sanity_estimate": round(uniform_probability, 6),
        "wall_replicates_s": round(wall_replicates, 3),
        "wall_uniform_s": round(wall_uniform, 3),
        "wall_resume_s": round(wall_resume, 3),
        "resume_bit_identical": True,
    })
    print(
        f"\nfault campaign: P[delivery < {TAIL_FRACTION:g}x baseline] = "
        f"{pooled:.4f} from {replicates} x {DRAWS} importance draws "
        f"(mean ESS {mean(ess_values):.1f}); {savings:.1f}x fewer runs "
        f"than uniform sampling to the same CI half-width; resume "
        f"{wall_resume:.1f}s (bit-identical)"
    )


if __name__ == "__main__":
    import sys

    bench_campaign_vs_uniform()
    print("wrote BENCH_perf.json")
    sys.exit(0)
