"""Empirical-loss channel: measured links instead of pathloss + fading.

This is the substitution for the paper's physical testbed.  The same CSMA
MAC and protocol stack run unmodified; only the channel differs:

* a frame on a known link is *lost* with the link's current loss
  probability (a bounded random walk inside the link's class band --
  Section 5.3 notes the loss rates "change fairly quickly");
* a lost frame still deposits sensing energy (carrier sense sees it, the
  payload is undecodable), mirroring a real fade or checksum failure;
* overlapping frames of comparable level destroy each other through the
  ordinary SINR rule, so collisions behave exactly as in the simulation
  substrate.

Virtual power levels encode the paper's physical explanation that "the
link quality mainly depends on the obstacles present": low-loss (solid)
links deliver *strong* frames, lossy (dashed) links deliver frames barely
above the receive threshold.  Against the 10 dB SINR capture rule this
reproduces real 802.11 behaviour: a strong frame survives overlap with a
weak one (capture), two comparable frames destroy each other, and a
"lost" frame still deposits sensing energy below the decode threshold.
Levels (against a 0 dBm receive threshold, -7 dBm carrier sense):
strong links +13 dBm, weak links +1 dBm, lost frames -3 dBm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from repro.net.channel import WirelessChannel
from repro.net.node import Node
from repro.phy.radio import RadioParams
from repro.sim.engine import Simulator

#: Virtual receive level of a decodable frame on a low-loss link (mW).
STRONG_POWER_MW = 20.0
#: Virtual receive level of a decodable frame on a lossy link (mW).
WEAK_POWER_MW = 1.25
#: Virtual level of a lost frame: senseable, not decodable (mW).
LOSS_POWER_MW = 0.5


def testbed_radio_params(data_rate_bps: float = 2_000_000.0) -> RadioParams:
    """Virtual radio levels matching the constants above."""
    return RadioParams(
        tx_power_dbm=0.0,
        data_rate_bps=data_rate_bps,
        rx_threshold_dbm=0.0,
        carrier_sense_threshold_dbm=-7.0,
        sinr_threshold_db=10.0,
    )


class TimeVaryingLoss:
    """Bounded random-walk loss probability inside a band.

    The walk advances lazily in fixed steps whenever the process is
    queried, so it is deterministic for a given RNG stream regardless of
    query pattern granularity.
    """

    def __init__(
        self,
        low: float,
        high: float,
        rng,
        update_interval_s: float = 5.0,
        step_fraction: float = 0.25,
    ) -> None:
        if not 0.0 <= low <= high <= 1.0:
            raise ValueError(f"need 0 <= low <= high <= 1, got [{low}, {high}]")
        if update_interval_s <= 0:
            raise ValueError("update interval must be positive")
        self.low = low
        self.high = high
        self.update_interval_s = update_interval_s
        self.step = step_fraction * (high - low)
        self._rng = rng
        self._value = rng.uniform(low, high)
        self._last_update = 0.0

    def loss_at(self, now: float) -> float:
        """Loss probability at simulation time ``now`` (monotone queries)."""
        while self._last_update + self.update_interval_s <= now:
            self._last_update += self.update_interval_s
            self._value += self._rng.uniform(-self.step, self.step)
            self._value = min(self.high, max(self.low, self._value))
        return self._value


@dataclass
class LinkProfile:
    """One emulated link: its loss process and its virtual signal level."""

    loss: TimeVaryingLoss
    power_mw: float = STRONG_POWER_MW

    def __post_init__(self) -> None:
        if self.power_mw <= LOSS_POWER_MW:
            raise ValueError(
                "a decodable frame must arrive above the loss level "
                f"({self.power_mw} <= {LOSS_POWER_MW})"
            )


class EmpiricalChannel(WirelessChannel):
    """A channel whose links come from a measured table, not geometry."""

    def __init__(
        self,
        sim: Simulator,
        profiles: Dict[FrozenSet[int], LinkProfile],
    ) -> None:
        super().__init__(sim)
        self.profiles = profiles
        self._loss_rng = sim.rng.stream("testbed.loss")

    def mean_rx_power_mw(self, sender: Node, receiver: Node) -> float:
        """Linked pairs hear each other at the link's virtual level."""
        profile = self._profile_for(sender.node_id, receiver.node_id)
        if profile is None:
            return 0.0
        return profile.power_mw

    def _sampled_power(
        self, sender: Node, receiver: Node, mean_mw: float
    ) -> float:
        profile = self._profile_for(sender.node_id, receiver.node_id)
        assert profile is not None  # audible implies linked
        loss = profile.loss.loss_at(self.sim.now)
        if self._loss_rng.random() < loss:
            return LOSS_POWER_MW
        return profile.power_mw

    def _profile_for(self, node_a: int, node_b: int) -> Optional[LinkProfile]:
        return self.profiles.get(frozenset((node_a, node_b)))

    def current_loss_rates(self) -> Dict[FrozenSet[int], float]:
        """Loss probability of every link right now (diagnostics)."""
        now = self.sim.now
        return {
            key: profile.loss.loss_at(now)
            for key, profile in self.profiles.items()
        }
