"""The shared wireless broadcast medium.

Every transmission is visible to every node whose *mean* received power
clears an audibility cutoff (precomputed while the topology holds; under
mobility, re-derived per update tick via :meth:`invalidate_topology`).
For each audible node the channel samples one fading realization, feeds
the power into that node's carrier-sense and interference bookkeeping,
and registers a pending reception if the faded power is decodable.  At
end of transmission each pending reception is decided by the receiver's
SINR rule.

Subclasses can override :meth:`_sampled_power` to replace the
pathloss-times-fading model; the testbed emulation uses this to drive the
same MAC with empirically measured link loss rates.

Two scale paths keep large meshes tractable without changing results:

* ``finalize()`` prunes its audibility scan through a
  :class:`~repro.net.topology.SpatialGridIndex` when the propagation
  model can bound its reach analytically, turning the O(N^2) pairing
  into O(N x cell occupancy).
* ``begin_transmission`` can evaluate a whole transmission's fading
  draws and threshold decisions as one numpy batch
  (:mod:`repro.phy.vectorized`), bit-identical to the per-receiver
  loop.  The backend is chosen per channel -- never per sender, since
  mixing would desynchronize the cloned RNG stream from the scalar one.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.topology import SpatialGridIndex
from repro.phy.fading import FadingModel, NoFading
from repro.phy.propagation import PropagationModel, TwoRayGroundPropagation
from repro.phy.reception import Reception
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority
from repro.sim.trace import CounterSet

#: Node count from which ``finalize()`` routes its audibility scan
#: through the spatial grid index (below it the brute scan is cheaper).
GRID_MIN_NODES = 64

#: Node count from which ``phy_backend="auto"`` picks the vectorized
#: reception path.  Small meshes have so few audible receivers per
#: transmission that numpy's per-call overhead eats the win; they stay
#: on the scalar loop (results are bit-identical either way).
VECTOR_MIN_NODES = 64

PHY_BACKENDS = ("auto", "scalar", "vectorized")


class Transmission:
    """One frame in flight."""

    __slots__ = ("sender_id", "packet", "dest_id", "start_time", "end_time",
                 "touched", "notify_sender", "sender")

    def __init__(
        self,
        sender: Node,
        packet: Packet,
        dest_id: int,
        start_time: float,
        end_time: float,
        notify_sender: bool,
    ) -> None:
        self.sender = sender
        self.sender_id = sender.node_id
        self.packet = packet
        self.dest_id = dest_id
        self.start_time = start_time
        self.end_time = end_time
        self.notify_sender = notify_sender
        self.touched: List[Node] = []


class ChannelError(RuntimeError):
    """Raised on physically impossible requests (double transmission)."""


class _VectorEntry:
    """Per-sender arrays for the batched reception path.

    Mirrors one ``_audible`` list as parallel numpy arrays (mean powers,
    decode thresholds) plus the sampler's per-link fading state, all in
    audible-list order so batch element ``k`` is receiver ``k``.
    """

    __slots__ = ("receivers", "receiver_ids", "mean_mw", "rx_thr", "slot")

    def __init__(self, receivers, receiver_ids, mean_mw, rx_thr, slot):
        self.receivers = receivers
        self.receiver_ids = receiver_ids
        self.mean_mw = mean_mw
        self.rx_thr = rx_thr
        self.slot = slot


class WirelessChannel:
    """Shared medium connecting a set of (possibly mobile) nodes."""

    def __init__(
        self,
        sim: Simulator,
        propagation: Optional[PropagationModel] = None,
        fading: Optional[FadingModel] = None,
        audible_margin_db: float = 10.0,
        phy_backend: str = "auto",
    ) -> None:
        if phy_backend not in PHY_BACKENDS:
            raise ChannelError(
                f"unknown phy_backend {phy_backend!r}; "
                f"expected one of {PHY_BACKENDS}"
            )
        self.sim = sim
        self.propagation = propagation or TwoRayGroundPropagation()
        self.fading = fading or NoFading()
        self.audible_margin_linear = 10.0 ** (audible_margin_db / 10.0)
        #: Requested reception backend ("auto" resolves at finalize).
        self.phy_backend = phy_backend
        #: What finalize() actually picked: "scalar" or "vectorized".
        self.phy_backend_resolved: Optional[str] = None
        self.nodes: List[Node] = []
        self.counters = CounterSet()
        #: sender id -> [(receiver, mean power, rx threshold)], with the
        #: receiver's decode threshold baked in so the per-transmission
        #: loop never chases ``receiver.params``.
        self._audible: Dict[int, List[Tuple[Node, float, float]]] = {}
        self._fading_rng = sim.rng.stream("phy.fading")
        self._finalized = False
        self._connectivity_cache: Optional[Dict[int, List[int]]] = None
        self._tx_counter_names: Dict[Any, str] = {}
        #: Transmissions currently on the air (begin minus end).  O(1)
        #: bookkeeping so the conservation monitor can assert that power
        #: ledgers and pending receptions drain exactly when this is 0.
        self.transmissions_in_flight = 0
        #: True when the faded power is provably the mean power: NoFading
        #: draws gain 1.0 for every packet and no subclass has replaced
        #: ``_sampled_power``, so the sample (and its virtual dispatch)
        #: can be skipped entirely in ``begin_transmission``.
        self._deterministic_power = False
        #: True when ``_sampled_power`` is the base implementation, so
        #: the scalar loop may call the fading model directly and the
        #: vectorized backend may replicate it with batched samplers.
        self._inline_fading = False
        #: Count of nodes with the radio administratively down
        #: (maintained via :meth:`note_active_change`), so the batched
        #: path skips building an active-subset mask when all are up.
        self._inactive_nodes = 0
        #: Vectorized-backend state; populated by finalize() when the
        #: resolved backend is "vectorized".
        self._vector_sampler = None
        self._vector_entries: Optional[Dict[int, _VectorEntry]] = None
        self._np = None
        #: Per-link fading state archive for the vectorized backend:
        #: sender id -> receiver id -> dumped sampler state.  The scalar
        #: CorrelatedRayleighFading keeps every link's AR(1) state in a
        #: dict it never prunes, so a link that leaves audibility and
        #: later returns resumes its old state; this archive gives the
        #: batched path the same memory so both backends stay
        #: bit-identical under mobility-driven audibility churn.
        self._vector_state_archive: Dict[int, Dict[int, tuple]] = {}
        #: Persistent spatial index over node positions (large meshes
        #: with an analytically bounded reach only); kept in sync by
        #: note_position_change so topology re-derivations stay pruned.
        self._grid: Optional[SpatialGridIndex] = None
        self._grid_reach: Optional[float] = None
        self._node_slots: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction

    def register_node(self, node: Node) -> None:
        if self._finalized:
            raise ChannelError("cannot add nodes after finalize()")
        node.channel = self
        self.nodes.append(node)

    def finalize(self) -> None:
        """Precompute per-sender audibility lists for the current layout.

        Re-running ``finalize()`` -- or, after position changes, the
        cheaper :meth:`invalidate_topology` -- is the only legal way to
        change the topology; both invalidate every derived cache
        (audibility lists, the memoized connectivity map, the vectorized
        backend's per-sender arrays -- whose per-link fading state is
        migrated by receiver id, exactly as the scalar model's keyed
        dict survives a re-finalize).

        On meshes of :data:`GRID_MIN_NODES` or more, the O(N^2) pairing
        scan is pruned through a persistent :class:`SpatialGridIndex`
        sized by the propagation model's analytic range bound: the grid
        yields a superset of each sender's in-range nodes (sorted by
        node index, i.e. registration order), and the exact per-pair
        power test decides audibility just as in the brute scan -- the
        resulting lists are bit-identical.  The grid is kept in sync
        incrementally by :meth:`note_position_change` (an O(1)
        re-bucket per move), so mobility ticks pay the pruned
        re-derivation cost, never a full index rebuild.
        """
        nodes = self.nodes
        self._node_slots = {
            node.node_id: index for index, node in enumerate(nodes)
        }
        self._grid = None
        self._grid_reach = None
        if len(nodes) >= GRID_MIN_NODES:
            reach = self._max_audible_range_m()
            if reach is not None:
                self._grid = SpatialGridIndex(
                    [node.position for node in nodes], cell_size_m=reach
                )
                self._grid_reach = reach
        self._rebuild_audible()
        base_sampled_power = (
            type(self)._sampled_power is WirelessChannel._sampled_power
        )
        self._deterministic_power = (
            isinstance(self.fading, NoFading) and base_sampled_power
        )
        self._inline_fading = base_sampled_power
        self._inactive_nodes = sum(
            1 for node in nodes if not node.active
        )
        self._resolve_backend()
        self._finalized = True

    def _rebuild_audible(self) -> None:
        """Re-derive every sender's audibility list from current positions."""
        nodes = self.nodes
        grid = self._grid
        self._audible = {}
        for index, sender in enumerate(nodes):
            audible: List[Tuple[Node, float, float]] = []
            pool = (
                nodes
                if grid is None
                else [
                    nodes[j]
                    for j in grid.candidates_within(index, self._grid_reach)
                ]
            )
            for receiver in pool:
                if receiver is sender:
                    continue
                mean_mw = self.mean_rx_power_mw(sender, receiver)
                cutoff = (
                    receiver.params.carrier_sense_threshold_mw
                    / self.audible_margin_linear
                )
                if mean_mw >= cutoff:
                    audible.append(
                        (receiver, mean_mw, receiver.params.rx_threshold_mw)
                    )
            self._audible[sender.node_id] = audible
        self._connectivity_cache = None

    def note_position_change(self, node: Node) -> None:
        """O(1) hook from ``Node.set_position``: re-bucket in the grid.

        Keeps the persistent spatial index exact while a mobility tick
        batches several moves; derived radio state stays stale until the
        batch's single :meth:`invalidate_topology` call re-derives it.
        """
        if self._grid is not None:
            self._grid.update_position(
                self._node_slots[node.node_id], node.position
            )

    def invalidate_topology(self) -> None:
        """Re-derive position-dependent state after nodes moved.

        The mobility-path counterpart of ``finalize()``: recomputes the
        audibility lists (through the incrementally maintained spatial
        grid on large meshes), drops the memoized connectivity map, and
        rebuilds the vectorized backend's per-sender arrays with
        per-link fading state migrated by receiver id -- so a link that
        leaves and later re-enters audibility resumes its correlated
        fading exactly as the scalar model's never-pruned state dict
        does.  Transmissions already in flight are untouched: their
        power contributions were recorded at start time, and only
        future transmissions see the new topology.
        """
        if not self._finalized:
            raise ChannelError(
                "channel not finalized; call finalize() before "
                "invalidate_topology()"
            )
        self._rebuild_audible()
        if self.phy_backend_resolved == "vectorized":
            self._build_vector_entries()

    def _max_audible_range_m(self) -> Optional[float]:
        """Worst-case audibility radius, or ``None`` if unbounded.

        Uses the loudest transmitter against the most sensitive cutoff,
        so *every* audible pair in the mesh is within the returned
        distance of each other; the grid query over this radius is a
        strict superset of each audibility list.
        """
        if not self.nodes:
            return None
        cutoff = (
            min(n.params.carrier_sense_threshold_mw for n in self.nodes)
            / self.audible_margin_linear
        )
        if cutoff <= 0.0:
            return None
        max_tx = max(n.params.tx_power_mw for n in self.nodes)
        max_gain = max(n.params.antenna_gain for n in self.nodes)
        return self.propagation.max_range_for_power(
            max_tx, cutoff, max_gain, max_gain
        )

    def _resolve_backend(self) -> None:
        """Pick scalar vs vectorized reception for this channel.

        "auto" vectorizes when the mesh is large enough, numpy imports,
        no subclass replaced ``_sampled_power``, and the fading model
        has a bit-identical batched sampler; anything else falls back to
        the scalar loop.  "vectorized" demands it and raises with the
        reason when impossible -- except for deterministic (NoFading)
        channels, where the sample-free scalar loop *is* the batch
        (there is nothing stochastic to vectorize) and is reported as
        resolved "scalar".

        The decision is per channel, never per sender: the sampler owns
        a clone of the ``phy.fading`` uniform stream, and mixing scalar
        draws into the original stream would desynchronize the two.
        """
        forced = self.phy_backend == "vectorized"
        if self.phy_backend == "scalar" or self._deterministic_power:
            self.phy_backend_resolved = "scalar"
            self._vector_entries = None
            return
        if self.phy_backend == "auto" and len(self.nodes) < VECTOR_MIN_NODES:
            self.phy_backend_resolved = "scalar"
            self._vector_entries = None
            return
        if not self._inline_fading:
            if forced:
                raise ChannelError(
                    f"phy_backend='vectorized' but {type(self).__name__} "
                    "overrides _sampled_power; the batched path cannot "
                    "replicate a custom power model bit-for-bit"
                )
            self.phy_backend_resolved = "scalar"
            self._vector_entries = None
            return
        try:
            from repro.phy import vectorized
        except ImportError:
            if forced:
                raise
            self.phy_backend_resolved = "scalar"
            self._vector_entries = None
            return
        if self._vector_sampler is None:
            sampler = vectorized.build_sampler(self.fading, self._fading_rng)
            if sampler is None:
                if forced:
                    raise ChannelError(
                        f"phy_backend='vectorized' but fading model "
                        f"{type(self.fading).__name__} has no bit-identical "
                        "batched sampler; use 'auto' or 'scalar'"
                    )
                self.phy_backend_resolved = "scalar"
                self._vector_entries = None
                return
            # The sampler clones the python stream's MT state; from here
            # on this channel must never draw from _fading_rng directly.
            self._vector_sampler = sampler
            self._np = vectorized.np
        self._build_vector_entries()
        self.phy_backend_resolved = "vectorized"

    def _build_vector_entries(self) -> None:
        """(Re)build per-sender batch arrays, migrating fading state.

        State flows through ``_vector_state_archive``: every old slot's
        per-link state is dumped into the archive first (fresher slot
        state overwrites older archive entries), then each new slot
        loads whatever the archive holds for its receiver ids.  Links
        absent from the new audible list keep their archived state, so
        audibility churn under mobility preserves exactly the link
        memory the scalar model's never-pruned ``(sender, receiver)``
        dict would.
        """
        np = self._np
        sampler = self._vector_sampler
        archive = self._vector_state_archive
        previous = self._vector_entries or {}
        for sender_id, old in previous.items():
            saved = archive.setdefault(sender_id, {})
            for rid, state in zip(
                old.receiver_ids, sampler.dump_state(old.slot)
            ):
                if state is not None:
                    saved[rid] = state
        entries: Dict[int, _VectorEntry] = {}
        for sender in self.nodes:
            audible = self._audible[sender.node_id]
            receivers = [receiver for receiver, _, _ in audible]
            entry = _VectorEntry(
                receivers=receivers,
                receiver_ids=[receiver.node_id for receiver in receivers],
                mean_mw=np.array([mean for _, mean, _ in audible]),
                rx_thr=np.array([thr for _, _, thr in audible]),
                slot=sampler.new_slot(len(audible)),
            )
            saved = archive.get(sender.node_id)
            if saved:
                for position, rid in enumerate(entry.receiver_ids):
                    state = saved.get(rid)
                    if state is not None:
                        sampler.load_state(entry.slot, position, state)
            entries[sender.node_id] = entry
        self._vector_entries = entries

    def note_active_change(self, active: bool) -> None:
        """O(1) hook from ``Node.set_active`` on every radio up/down flip."""
        self._inactive_nodes += -1 if active else 1

    def mean_rx_power_mw(self, sender: Node, receiver: Node) -> float:
        """Mean (un-faded) received power for the sender->receiver link.

        Goes through the propagation model's position-aware entry point
        so geometry-sensitive models (obstacle shadowing) see the actual
        endpoints; for plain models the base implementation reduces to
        the identical distance-only computation.
        """
        return self.propagation.rx_power_mw_between(
            sender.params.tx_power_mw,
            sender.position,
            receiver.position,
            sender.params.antenna_gain,
            receiver.params.antenna_gain,
        )

    def audible_neighbors(self, node_id: int) -> List[Tuple[Node, float]]:
        """(neighbor, mean power) pairs audible from ``node_id``."""
        return [
            (receiver, mean_mw)
            for receiver, mean_mw, _threshold in self._audible[node_id]
        ]

    # ------------------------------------------------------------------
    # Transmission lifecycle (called by the MAC)

    def begin_transmission(
        self,
        sender: Node,
        packet: Packet,
        dest_id: int,
        duration_s: float,
        notify_sender: bool = True,
    ) -> Optional[Transmission]:
        if not self._finalized:
            raise ChannelError("channel not finalized; call finalize() first")
        if sender.transmitting:
            if notify_sender:
                raise ChannelError(
                    f"node {sender.node_id} attempted concurrent transmissions"
                )
            # Control frame (ACK) collided with own ongoing tx: drop.
            self.counters.add("channel.ack_dropped_half_duplex")
            return None
        if not sender.active:
            # Radio is down: the frame evaporates, but the MAC must keep
            # cycling, so complete the "transmission" after the airtime.
            self.counters.add("channel.tx_dropped_node_down")
            if notify_sender:
                self.sim.schedule(
                    duration_s,
                    sender.mac.on_tx_complete,
                    priority=EventPriority.PHY,
                )
            return None
        now = self.sim.now
        end_time = now + duration_s
        tx = Transmission(sender, packet, dest_id, now, end_time,
                          notify_sender)
        kind = packet.kind
        counter_name = self._tx_counter_names.get(kind)
        if counter_name is None:
            counter_name = f"channel.tx.{kind.value}"
            self._tx_counter_names[kind] = counter_name
        self.counters.add(counter_name)
        self.transmissions_in_flight += 1
        sender.phy_begin_own_tx()
        touched_append = tx.touched.append
        entries = self._vector_entries
        if entries is not None:
            # Batched path: one numpy evaluation of every audible link's
            # fading draw, faded power and decode decision, then a thin
            # fan-out loop feeding the per-node bookkeeping.  tolist()
            # hands back plain Python floats, so power ledgers and
            # telemetry never see numpy scalars.
            entry = entries[sender.node_id]
            receivers = entry.receivers
            count = len(receivers)
            if count:
                sel = None
                if self._inactive_nodes:
                    sel = [
                        k for k in range(count) if receivers[k].active
                    ]
                    if len(sel) == count:
                        sel = None
                gains = self._vector_sampler.gains(
                    entry.slot, count, sel, now
                )
                if sel is None:
                    powers = entry.mean_mw * gains
                    decode = powers >= entry.rx_thr
                    targets = receivers
                else:
                    index = self._np.asarray(sel, dtype=self._np.intp)
                    powers = entry.mean_mw[index] * gains
                    decode = powers >= entry.rx_thr[index]
                    targets = [receivers[k] for k in sel]
                power_list = powers.tolist()
                decode_list = decode.tolist()
                for k, receiver in enumerate(targets):
                    power_mw = power_list[k]
                    if power_mw <= 0.0:
                        continue
                    receiver.phy_add_power(tx, power_mw)
                    touched_append(receiver)
                    if decode_list[k] and not receiver.transmitting:
                        reception = Reception(
                            tx, receiver.node_id, power_mw, now, end_time
                        )
                        receiver.phy_start_reception(reception)
        else:
            deterministic = self._deterministic_power
            sample = (
                self.fading.sample_link_gain if self._inline_fading else None
            )
            rng = self._fading_rng
            sender_id = sender.node_id
            for receiver, mean_mw, rx_threshold_mw in self._audible[sender_id]:
                if not receiver.active:
                    continue
                if deterministic:
                    power_mw = mean_mw
                else:
                    if sample is not None:
                        power_mw = mean_mw * sample(
                            (sender_id, receiver.node_id), now, rng
                        )
                    else:
                        power_mw = self._sampled_power(
                            sender, receiver, mean_mw
                        )
                    if power_mw <= 0.0:
                        continue
                receiver.phy_add_power(tx, power_mw)
                touched_append(receiver)
                if not receiver.transmitting and power_mw >= rx_threshold_mw:
                    reception = Reception(
                        tx, receiver.node_id, power_mw, now, end_time
                    )
                    receiver.phy_start_reception(reception)
        self.sim.schedule(
            duration_s, self._end_transmission, tx, priority=EventPriority.PHY
        )
        return tx

    def _sampled_power(
        self, sender: Node, receiver: Node, mean_mw: float
    ) -> float:
        """Fading-sampled instantaneous power for this packet on this link."""
        gain = self.fading.sample_link_gain(
            (sender.node_id, receiver.node_id), self.sim.now, self._fading_rng
        )
        return mean_mw * gain

    def _end_transmission(self, tx: Transmission) -> None:
        self.transmissions_in_flight -= 1
        tx.sender.phy_end_own_tx()
        for receiver in tx.touched:
            receiver.phy_remove_power(tx)
        for receiver in tx.touched:
            receiver.phy_finish_reception(tx, tx.dest_id)
        if tx.notify_sender:
            tx.sender.mac.on_tx_complete()

    # ------------------------------------------------------------------
    # Diagnostics

    def telemetry_snapshot(self) -> Dict[str, float]:
        """Cumulative channel counters (tx per kind, drops) by name.

        Pull-based accessor for the telemetry sampler; the transmission
        path only touches its existing ``CounterSet``.
        """
        return self.counters.as_dict()

    def connectivity_map(self) -> Dict[int, List[int]]:
        """node -> neighbors whose mean power clears the receive threshold.

        Memoized after :meth:`finalize`: while the topology holds, the
        O(n^2) scan happens once no matter how often benches poll it.
        Invalidation rule: re-running ``finalize()`` or calling
        :meth:`invalidate_topology` after position changes (the two
        legal topology changes) clears the memo; callers must treat the
        returned mapping as read-only.
        """
        if self._connectivity_cache is None:
            self._connectivity_cache = {
                sender.node_id: [
                    receiver.node_id
                    for receiver, mean_mw, threshold
                    in self._audible[sender.node_id]
                    if mean_mw >= threshold
                ]
                for sender in self.nodes
            }
        return self._connectivity_cache
