"""ODMRP protocol constants.

Defaults follow the paper's simulation setup: ``delta = 30 ms`` and
``alpha = 20 ms`` (Section 4.1), a 3 s route-refresh interval and a
forwarding-group lifetime of three refresh rounds (the values used by the
original ODMRP literature).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class OdmrpConfig:
    """Tunable protocol parameters."""

    #: Interval between JOIN QUERY floods from an active source.
    refresh_interval_s: float = 3.0
    #: Forwarding-group flag lifetime; 3x refresh, per the ODMRP papers.
    fg_timeout_s: float = 9.0
    #: Member wait before answering the best JOIN QUERY (paper: 30 ms).
    delta_s: float = 0.030
    #: Duplicate-query forwarding window at intermediate nodes (20 ms).
    alpha_s: float = 0.020
    #: Max random delay before rebroadcasting a JOIN QUERY (flood jitter).
    query_jitter_s: float = 0.008
    #: Max random delay before sending a JOIN REPLY.
    reply_jitter_s: float = 0.004
    #: Network-layer size of a JOIN QUERY packet.
    query_size_bytes: int = 36
    #: Base size of a JOIN REPLY plus per-entry increment.
    reply_base_size_bytes: int = 28
    reply_entry_size_bytes: int = 12

    def __post_init__(self) -> None:
        if self.refresh_interval_s <= 0:
            raise ValueError("refresh interval must be positive")
        if self.fg_timeout_s < self.refresh_interval_s:
            raise ValueError(
                "forwarding-group timeout shorter than one refresh round "
                "would tear the mesh down between floods"
            )
        if self.delta_s <= 0 or self.alpha_s <= 0:
            raise ValueError("delta and alpha must be positive")
        if self.alpha_s >= self.delta_s:
            raise ValueError(
                "alpha must be smaller than delta: members must outwait "
                "the duplicate-forwarding window (Section 3.1)"
            )

    def reply_size_bytes(self, num_entries: int) -> int:
        return self.reply_base_size_bytes + self.reply_entry_size_bytes * num_entries
