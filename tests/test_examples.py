"""Smoke tests for the example scripts.

Each example is importable (no work at import time) and exposes a
``main()``.  The fast ones are executed end-to-end; the slow ones
(multi-minute sweeps) are only imported -- their underlying entry points
are exercised by the benchmark suite anyway.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = [
    "quickstart",
    "metric_comparison",
    "testbed_emulation",
    "link_probing_demo",
]


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesImport:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_importable_with_main(self, name):
        module = load_example(name)
        assert callable(module.main)


class TestFastExamplesRun:
    def test_link_probing_demo_runs(self, capsys):
        module = load_example("link_probing_demo")
        module.main()
        out = capsys.readouterr().out
        assert "t = 400 s" in out
        assert "terrible" in out

    def test_quickstart_runs(self, capsys):
        module = load_example("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "ODMRP_SPP delivers" in out
        # The headline direction must hold in the shipped example.
        assert "+";  # gain sign rendered
        assert "throughput" in out
