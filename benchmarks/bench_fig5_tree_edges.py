"""Benchmark E11: Figure 5, the trees built by ODMRP vs ODMRP_PP.

Extracts the heavily used links of each protocol's forwarding structure
on the testbed.  The paper's qualitative claim: ODMRP leans on the lossy
one-hop links (2-5, 4-7, 1-3, 9-3) while ODMRP_PP routes around them
(2-10-5, 4-9-7, ...).  Quantified here as the share of accepted data
that crossed a Figure 4 lossy link.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.experiments.figures import figure5_tree_edges, lossy_link_data_share
from repro.testbed.floormap import lossy_link_keys
from benchmarks.conftest import testbed_config


def bench_fig5_tree_edges(benchmark):
    trees = benchmark.pedantic(
        lambda: figure5_tree_edges(testbed_config(), ("odmrp", "pp")),
        iterations=1,
        rounds=1,
    )
    lossy = set(lossy_link_keys())
    shares = {}
    for protocol, tree in trees.items():
        shares[protocol] = lossy_link_data_share(tree)
        rows = [
            (
                f"{src}->{dst}",
                f"{share:.2f}",
                "lossy" if frozenset((src, dst)) in lossy else "low-loss",
            )
            for src, dst, share in tree[:10]
        ]
        print()
        print(render_table(
            ("link", "relative data share", "figure 4 class"),
            rows,
            title=f"Figure 5: heavily used links under {protocol}",
        ))
    print(
        f"\nshare of tree traffic on lossy links: "
        f"odmrp={shares['odmrp']:.1%}  pp={shares['pp']:.1%} "
        "(paper: PP's tree avoids the dashed links)"
    )
    benchmark.extra_info["lossy_share"] = shares
    assert shares["pp"] < shares["odmrp"], (
        "ODMRP_PP must push less data over lossy links than ODMRP"
    )
