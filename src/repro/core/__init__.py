"""The paper's primary contribution: multicast link-quality routing metrics.

Five metrics adapted for link-layer-broadcast multicast, plus the hop-count
baseline:

* :class:`~repro.core.metrics.EtxMetric` -- forward-only expected
  transmission count, additive.
* :class:`~repro.core.metrics.EttMetric` -- expected transmission time,
  additive.
* :class:`~repro.core.metrics.PpMetric` -- packet-pair delay with loss
  penalty, additive.
* :class:`~repro.core.metrics.MetxMetric` -- multicast ETX, recursive
  composition over the path.
* :class:`~repro.core.metrics.SppMetric` -- success probability product,
  multiplicative, higher-is-better.
* :class:`~repro.core.metrics.HopCountMetric` -- the baseline.
"""

from repro.core.accumulation import (
    additive,
    multiplicative,
    path_cost,
    recursive_metx,
)
from repro.core.comparison import best_path, normalize_against, rank_paths
from repro.core.metrics import (
    EttMetric,
    EtxMetric,
    HopCountMetric,
    LinkQuality,
    MetxMetric,
    PpMetric,
    RouteMetric,
    SppMetric,
    metric_by_name,
    metric_type_by_name,
    register_metric,
    ALL_METRIC_NAMES,
)

__all__ = [
    "RouteMetric",
    "LinkQuality",
    "HopCountMetric",
    "EtxMetric",
    "EttMetric",
    "PpMetric",
    "MetxMetric",
    "SppMetric",
    "metric_by_name",
    "metric_type_by_name",
    "register_metric",
    "ALL_METRIC_NAMES",
    "additive",
    "multiplicative",
    "recursive_metx",
    "path_cost",
    "best_path",
    "rank_paths",
    "normalize_against",
]
