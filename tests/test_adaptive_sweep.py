"""Tests for the adaptive sweep planner (:mod:`repro.experiments.adaptive`).

Covers the planning primitives (seed pools, stopping decisions), the
``[adaptive]`` spec section's strict round-trip and validation, the
plan's journal records (written, replayable, invisible to run replay,
compaction-proof), paired-CRN comparisons, report rendering, the CLI
flag, and -- the regression anchor -- a golden batch-by-batch plan for
a tiny 3-protocol sweep (``tests/data/golden_adaptive_plan.json``), so
planner refactors cannot silently change seed allocation.

Regenerate the golden after an *intentional* planner change with::

    PYTHONPATH=src python tests/data/make_golden_adaptive_plan.py
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments.adaptive import (
    AdaptiveConfig,
    build_seed_pool,
    default_baseline,
    plan_journal_path,
    replay_plan,
    run_adaptive_experiment,
)
from repro.experiments.report import adaptive_section, render_report
from repro.experiments.resilience import SweepJournal
from repro.experiments.scenarios import SimulationScenarioConfig
from repro.experiments.spec import ExperimentSpec, SpecError

GOLDEN_PLAN_PATH = (
    pathlib.Path(__file__).parent / "data" / "golden_adaptive_plan.json"
)

TINY_CONFIG = SimulationScenarioConfig(
    num_nodes=6,
    area_width_m=400.0,
    area_height_m=400.0,
    num_groups=1,
    members_per_group=3,
    duration_s=6.0,
    warmup_s=2.0,
)


def tiny_spec(**overrides) -> ExperimentSpec:
    adaptive = overrides.pop("adaptive", AdaptiveConfig(
        target_half_width=0.2, batch_size=2, min_seeds=2, max_seeds=8,
    ))
    defaults = dict(
        name="golden-adaptive",
        protocols=("odmrp", "spp", "etx"),
        seeds=(1, 2),
        adaptive=adaptive,
        config=TINY_CONFIG,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


@pytest.fixture(scope="module")
def tiny_plan():
    """One shared adaptive execution for every assertion below."""
    return run_adaptive_experiment(tiny_spec())


class TestSeedPool:
    def test_extends_spec_seeds_deterministically(self):
        assert build_seed_pool((1, 2), 6) == (1, 2, 3, 4, 5, 6)
        assert build_seed_pool((5, 9), 4) == (5, 9, 10, 11)

    def test_skips_seeds_the_spec_already_uses(self):
        assert build_seed_pool((3, 1), 5) == (3, 1, 4, 5, 6)

    def test_truncates_to_cap(self):
        assert build_seed_pool((1, 2, 3, 4), 2) == (1, 2)

    def test_exact_fit(self):
        assert build_seed_pool((7, 8), 2) == (7, 8)


class TestAdaptiveConfigValidation:
    def test_defaults_valid(self):
        AdaptiveConfig().validate()

    @pytest.mark.parametrize("kwargs", [
        {"target_half_width": 0.0},
        {"target_half_width": -1.0},
        {"batch_size": 0},
        {"min_seeds": 0},
        {"max_seeds": 0},
        {"batch_size": True},
        {"min_seeds": 5, "max_seeds": 4},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveConfig(**kwargs).validate()

    def test_spec_rejects_unknown_baseline(self):
        spec = tiny_spec(adaptive=AdaptiveConfig(baseline="maodv"))
        with pytest.raises(SpecError, match="baseline"):
            spec.validate()

    def test_spec_rejects_mobility_axis_combination(self):
        spec = tiny_spec(mobility_models=("random-waypoint",))
        with pytest.raises(SpecError, match="mobility_models"):
            spec.validate()

    def test_spec_surfaces_adaptive_errors_as_spec_errors(self):
        spec = tiny_spec(adaptive=AdaptiveConfig(batch_size=0))
        with pytest.raises(SpecError, match="batch_size"):
            spec.validate()


class TestSpecRoundTrip:
    def test_toml_round_trip(self):
        spec = tiny_spec(adaptive=AdaptiveConfig(
            target_half_width=0.1, batch_size=3, min_seeds=2,
            max_seeds=12, paired=False, baseline="spp",
        ))
        assert ExperimentSpec.from_toml(spec.to_toml()) == spec

    def test_json_round_trip(self):
        spec = tiny_spec()
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_adaptive_section_omitted_when_absent(self):
        spec = tiny_spec(adaptive=None)
        assert "adaptive" not in spec.to_dict()
        assert ExperimentSpec.from_toml(spec.to_toml()).adaptive is None

    def test_unknown_adaptive_key_rejected(self):
        data = tiny_spec().to_dict()
        data["adaptive"]["typo_knob"] = 1
        with pytest.raises(SpecError, match="typo_knob"):
            ExperimentSpec.from_dict(data)

    def test_describe_mentions_adaptive(self):
        text = tiny_spec().describe()
        assert "adaptive:" in text
        assert "target-half-width=0.2" in text


class TestDefaultBaseline:
    def test_prefers_odmrp(self):
        assert default_baseline(("spp", "odmrp", "etx")) == "odmrp"

    def test_registry_order_otherwise(self):
        assert default_baseline(("spp", "etx")) == "etx"


class TestPlanner:
    def test_plan_shape(self, tiny_plan):
        assert tiny_plan.seed_pool == (1, 2, 3, 4, 5, 6, 7, 8)
        assert tiny_plan.baseline == "odmrp"
        assert tiny_plan.batches, "planner produced no batches"
        spent = tiny_plan.seeds_spent()
        assert set(spent) == {"odmrp", "spp", "etx"}
        # The planner's whole point: budget follows variance, so not
        # every protocol may spend the full cap.
        assert all(2 <= n <= 8 for n in spent.values())
        assert tiny_plan.total_runs == sum(spent.values())

    def test_stop_reasons_are_terminal(self, tiny_plan):
        reasons = tiny_plan.stop_reasons()
        assert all(
            reason in ("converged", "max-seeds", "zero-throughput")
            for reason in reasons.values()
        )

    def test_converged_protocols_hit_target(self, tiny_plan):
        target = tiny_plan.config.target_half_width
        for decision in tiny_plan.final_decisions().values():
            if decision.reason == "converged":
                assert decision.ci_half_width <= target
                assert decision.seeds_spent >= tiny_plan.config.min_seeds

    def test_runs_match_plan(self, tiny_plan):
        by_protocol = {}
        for run in tiny_plan.runs:
            by_protocol.setdefault(run.protocol, []).append(
                run.topology_seed
            )
        for protocol, spent in tiny_plan.seeds_spent().items():
            assert by_protocol[protocol] == list(
                tiny_plan.seed_pool[:spent]
            )

    def test_deterministic_replan(self, tiny_plan):
        again = run_adaptive_experiment(tiny_spec())
        assert again.plan_dict() == tiny_plan.plan_dict()
        assert again.runs == tiny_plan.runs

    def test_paired_comparisons_cover_non_baseline(self, tiny_plan):
        comparisons = {
            c.protocol: c for c in tiny_plan.paired_comparisons()
        }
        assert set(comparisons) == {"spp", "etx"}
        for comparison in comparisons.values():
            assert comparison.pairs >= 2
            assert comparison.paired_low <= comparison.paired_high

    def test_unpaired_mode_disjoint_seeds(self):
        spec = tiny_spec(
            protocols=("odmrp", "spp"),
            adaptive=AdaptiveConfig(
                target_half_width=0.2, batch_size=2, min_seeds=2,
                max_seeds=4, paired=False,
            ),
        )
        plan = run_adaptive_experiment(spec)
        seeds = {
            protocol: {
                run.topology_seed for run in plan.runs
                if run.protocol == protocol
            }
            for protocol in spec.protocols
        }
        assert not (seeds["odmrp"] & seeds["spp"])


class TestPlanJournal:
    def test_plan_records_round_trip(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        spec = tiny_spec(
            protocols=("odmrp", "spp"),
            adaptive=AdaptiveConfig(
                target_half_width=0.2, batch_size=2, min_seeds=2,
                max_seeds=4,
            ),
        )
        plan = run_adaptive_experiment(spec, journal_path=journal)
        records = replay_plan(journal, spec.name)
        assert len(records) == len(plan.batches)
        for record, batch in zip(
            records, plan.plan_dict()["batches"]
        ):
            assert record["batch"] == batch["batch"]
            assert record["seeds"] == batch["seeds"]
            assert record["protocols"] == batch["protocols"]
            assert record["decisions"] == batch["decisions"]

        # Plan records are invisible to run replay (executors never see
        # them) but survive compaction (unique schema-1 keys).
        run_records = SweepJournal.replay(journal)
        assert len(run_records) == plan.total_runs
        SweepJournal.compact(journal)
        assert replay_plan(journal, spec.name) == records
        assert len(SweepJournal.replay(journal)) == plan.total_runs

    def test_resume_replays_identical_plan(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        spec = tiny_spec(
            protocols=("odmrp", "spp"),
            adaptive=AdaptiveConfig(
                target_half_width=0.2, batch_size=2, min_seeds=2,
                max_seeds=4,
            ),
        )
        first = run_adaptive_experiment(spec, journal_path=journal)
        resumed = run_adaptive_experiment(
            spec, journal_path=journal, resume=True
        )
        assert resumed.plan_dict() == first.plan_dict()
        assert resumed.runs == first.runs

    def test_journal_path_resolution(self, tmp_path):
        plain = tiny_spec()
        assert plan_journal_path(plain) is None
        explicit = plan_journal_path(
            plain, journal_path=str(tmp_path / "j.jsonl")
        )
        assert explicit == str(tmp_path / "j.jsonl")
        distributed = tiny_spec(backend=f"dir://{tmp_path}/shared")
        assert plan_journal_path(distributed) == (
            f"{tmp_path}/shared/journal.jsonl"
        )
        resilient = tiny_spec(run_timeout_s=30.0)
        assert plan_journal_path(resilient) is not None


class TestReporting:
    def test_adaptive_section_contents(self, tiny_plan):
        section = adaptive_section(tiny_plan)
        assert "### Adaptive plan" in section
        assert "seeds" in section and "CI half-width" in section
        assert "paired delta vs odmrp" in section
        for protocol, spent in tiny_plan.seeds_spent().items():
            assert f"| {protocol} | {spent} |" in section

    def test_render_report_includes_plan(self, tiny_plan):
        report = render_report(
            tiny_plan.runs, title="adaptive", adaptive=tiny_plan
        )
        assert "### Adaptive plan" in report
        assert "### Normalized throughput" in report


class TestCli:
    def test_run_parser_accepts_adaptive_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "--adaptive", "--dry-run"])
        assert args.adaptive is True
        assert args.dry_run is True

    def test_dry_run_prints_adaptive_plan(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = str(tmp_path / "spec.toml")
        tiny_spec().save(spec_path)
        code = main(["run", "--spec", spec_path, "--adaptive", "--dry-run"])
        out = capsys.readouterr().out
        assert code == 0
        assert "adaptive: target-half-width=0.2" in out


class TestGoldenPlan:
    """Refactors of the planner cannot silently change seed allocation."""

    def test_tiny_sweep_matches_golden_plan(self, tiny_plan):
        golden = json.loads(GOLDEN_PLAN_PATH.read_text(encoding="utf-8"))
        plan = tiny_plan.plan_dict()
        assert plan["seed_pool"] == golden["seed_pool"]
        assert plan["seeds_spent"] == golden["seeds_spent"]
        assert plan["stop_reasons"] == golden["stop_reasons"]
        assert plan["total_runs"] == golden["total_runs"]
        assert len(plan["batches"]) == len(golden["batches"])
        for mine, theirs in zip(plan["batches"], golden["batches"]):
            assert mine == theirs, (
                f"batch {theirs['batch']} diverged from the golden plan"
            )
        assert plan == golden
