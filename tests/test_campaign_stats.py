"""Property battery for the importance-weighted estimator layer.

The fault-campaign planner biases its fault draws toward severe
configurations and re-weights them back to the nominal distribution,
so the weighted estimators are load-bearing in exactly the way the
Student-t layer is for adaptive sweeps.  This suite checks the
*statistical* claims (unbiasedness on a mixture with a known closed
form, CI coverage on synthetic importance samples, rare-event tail
recovery), the algebraic identities (equal weights reduce to the
unweighted estimators, scale invariance in the weights, ESS bounds),
and the documented failure modes (degeneracy sentinels on a proposal
that fails to dominate the nominal, ValueError on malformed weight
vectors).  CI runs it under ``HYPOTHESIS_PROFILE=ci`` for
derandomized, bounded examples.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import (
    DEGENERACY_ESS_SHARE,
    WeightDiagnostics,
    confidence_interval_95,
    effective_sample_size,
    mean,
    weight_diagnostics,
    weighted_mean,
    weighted_mean_ci,
    weighted_quantile,
    weighted_tail_probability,
    weighted_tail_probability_ci,
)

# The synthetic campaign used throughout: nominal severity density
# p(theta) = kappa (1 - theta)^(kappa - 1) on [0, 1] (mild-biased, mean
# 1 / (kappa + 1), tail P[theta > c] = (1 - c)^kappa), matching the
# planner's CampaignConfig.nominal_shape.
KAPPA = 3.0
TRUE_MEAN = 1.0 / (KAPPA + 1.0)


def nominal_density(theta: float) -> float:
    return KAPPA * (1.0 - theta) ** (KAPPA - 1.0)


def uniform_proposal_sample(rng: random.Random, n: int):
    """Importance sample with q = Uniform(0, 1): dominates p everywhere
    (finite-variance weights), so every estimator claim applies."""
    thetas = [rng.random() for _ in range(n)]
    weights = [nominal_density(theta) for theta in thetas]
    return thetas, weights


def severe_proposal_sample(rng: random.Random, n: int, lam: float = 3.0):
    """The planner's own proposal q(theta) = lam theta^(lam - 1)
    (severe-biased).  Does NOT dominate p near theta = 0, so the
    weights have infinite variance for full-support functionals --
    exactly the pathology the degeneracy sentinels exist to flag.  Tail
    functionals (indicators supported at large theta) stay
    finite-variance, which is the regime the campaigns run in.
    """
    thetas, weights = [], []
    for _ in range(n):
        theta = rng.random() ** (1.0 / lam)
        log_p = math.log(KAPPA) + (KAPPA - 1.0) * math.log(
            max(1.0 - theta, 1e-300)
        )
        log_q = math.log(lam) + (lam - 1.0) * math.log(max(theta, 1e-300))
        thetas.append(theta)
        weights.append(math.exp(log_p - log_q))
    return thetas, weights


# Magnitudes below ~1e-6 are excluded (not just subnormals): the exact
# power-of-two scale-invariance property needs every weight*value
# product to stay in the normal range, where 2^k commutes with IEEE
# multiplication -- gradual underflow breaks exactness.
values_strategy = st.lists(
    st.floats(min_value=-100.0, max_value=100.0).filter(
        lambda v: v == 0.0 or abs(v) >= 1e-6
    ),
    min_size=1,
    max_size=12,
)
positive_weights = st.floats(min_value=1e-3, max_value=1e3)


@st.composite
def weighted_samples(draw):
    values = draw(values_strategy)
    weights = draw(
        st.lists(
            positive_weights,
            min_size=len(values),
            max_size=len(values),
        )
    )
    return values, weights


class TestWeightedMean:
    @given(values_strategy)
    def test_equal_weights_reduce_to_mean(self, values):
        assert weighted_mean(values, [1.0] * len(values)) == (
            pytest.approx(mean(values), rel=1e-12, abs=1e-12)
        )

    @given(weighted_samples(), st.integers(min_value=-20, max_value=20))
    def test_weight_scale_invariant(self, sample, exponent):
        """Self-normalization: rescaling all weights by c > 0 changes
        nothing.  Power-of-two scales commute exactly with IEEE
        arithmetic, so equality is exact."""
        values, weights = sample
        scale = 2.0 ** exponent
        assert weighted_mean(values, weights) == weighted_mean(
            values, [scale * w for w in weights]
        )

    @given(weighted_samples())
    def test_bounded_by_observed_range(self, sample):
        values, weights = sample
        m = weighted_mean(values, weights)
        assert min(values) - 1e-9 <= m <= max(values) + 1e-9

    def test_unbiased_on_known_mixture(self):
        """The core IS claim: sampling from the uniform proposal and
        re-weighting by p recovers E_p[theta] = 1/(kappa+1) = 0.25.
        Seeded draws, so the tolerance cannot flake."""
        thetas, weights = uniform_proposal_sample(random.Random(2024), 4000)
        assert weighted_mean(thetas, weights) == pytest.approx(
            TRUE_MEAN, abs=0.01
        )


class TestEffectiveSampleSize:
    @given(st.lists(positive_weights, min_size=1, max_size=20))
    def test_bounds(self, weights):
        ess = effective_sample_size(weights)
        assert 1.0 - 1e-9 <= ess <= len(weights) + 1e-9

    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=-10, max_value=10),
    )
    def test_equal_weights_give_n(self, n, exponent):
        ess = effective_sample_size([2.0 ** exponent] * n)
        assert ess == pytest.approx(n, rel=1e-12)

    @given(st.lists(positive_weights, min_size=2, max_size=20))
    def test_strictly_below_n_when_unequal(self, weights):
        if len(set(weights)) == 1:
            return
        assert effective_sample_size(weights) < len(weights)

    def test_concentration_drives_ess_to_one(self):
        assert effective_sample_size([1e12, 1.0, 1.0]) == pytest.approx(
            1.0, abs=1e-9
        )

    def test_singleton(self):
        assert effective_sample_size([0.37]) == pytest.approx(1.0)


class TestDegeneracySentinels:
    def test_equal_weights_healthy(self):
        diag = weight_diagnostics([2.0] * 8)
        assert diag == WeightDiagnostics(
            n=8, ess=pytest.approx(8.0), max_share=pytest.approx(0.125),
            degenerate=False,
        )

    def test_dominant_weight_flags(self):
        diag = weight_diagnostics([10.0, 1.0, 1.0, 1.0])
        assert diag.max_share > 0.5
        assert diag.degenerate

    def test_ess_share_flags_without_dominant_weight(self):
        # Two equal heavyweights among six near-zero draws: max_share
        # just under 1/2, but ESS ~= 2 of 8 is below the 1/3 floor.
        weights = [1.0, 1.0] + [1e-6] * 6
        diag = weight_diagnostics(weights)
        assert diag.max_share < 0.5
        assert diag.ess / diag.n < DEGENERACY_ESS_SHARE
        assert diag.degenerate

    def test_singleton_not_degenerate(self):
        assert not weight_diagnostics([5.0]).degenerate

    def test_flags_non_dominating_proposal(self):
        """The pathology the sentinel exists for: the severe-biased
        proposal does not dominate the nominal near theta = 0, so
        full-support weights are infinite-variance and the ESS
        collapses.  Every seed must flag it -- a silent pass here is a
        silent lie in the robustness report."""
        for seed in range(1, 6):
            _, weights = severe_proposal_sample(random.Random(seed), 200)
            assert weight_diagnostics(weights).degenerate


class TestWeightedQuantile:
    def test_equal_weights_give_order_statistics(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        weights = [1.0] * 5
        for k in range(1, 6):
            assert weighted_quantile(values, weights, k / 5.0) == float(k)

    def test_extremes(self):
        values, weights = [3.0, 1.0, 2.0], [1.0, 1.0, 1.0]
        assert weighted_quantile(values, weights, 0.0) == 1.0
        assert weighted_quantile(values, weights, 1.0) == 3.0

    def test_zero_weight_values_ignored(self):
        assert weighted_quantile([0.0, 5.0], [0.0, 1.0], 0.0) == 5.0

    def test_pinned_weighted_median(self):
        # CDF steps: 1 -> 0.25, 2 -> 0.5, 3 -> 1.0.
        assert weighted_quantile([1.0, 2.0, 3.0], [1.0, 1.0, 2.0], 0.5) == 2.0

    @given(
        weighted_samples(),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_monotone_in_q(self, sample, q1, q2):
        values, weights = sample
        lo, hi = min(q1, q2), max(q1, q2)
        assert weighted_quantile(values, weights, lo) <= weighted_quantile(
            values, weights, hi
        )

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            weighted_quantile([1.0], [1.0], -0.1)
        with pytest.raises(ValueError):
            weighted_quantile([1.0], [1.0], 1.1)


class TestTailProbability:
    @given(weighted_samples(), st.floats(min_value=-200.0, max_value=200.0))
    def test_is_a_probability(self, sample, threshold):
        values, weights = sample
        assert 0.0 <= weighted_tail_probability(
            values, weights, threshold
        ) <= 1.0

    def test_equal_weights_give_empirical_fraction(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert weighted_tail_probability(
            values, [1.0] * 4, 2.5
        ) == pytest.approx(0.5)
        assert weighted_tail_probability(values, [1.0] * 4, 1.0) == 0.0

    def test_recovers_rare_event_from_severe_proposal(self):
        """The estimator the campaigns exist for: P[delivery < 0.1]
        with delivery = 1 - theta is P[theta > 0.9] = 0.1^3 = 1e-3
        under the nominal -- a ~4-hit event in 4000 nominal draws, but
        the severe proposal lands ~27 % of its draws there and the
        weights carry them back.  Seeded, so the bounds cannot flake.
        """
        thetas, weights = severe_proposal_sample(random.Random(2024), 4000)
        delivery = [1.0 - theta for theta in thetas]
        estimate = weighted_tail_probability(delivery, weights, 0.1)
        assert 0.0005 < estimate < 0.002


class TestWeightedMeanCI:
    def test_equal_weights_match_t_interval_up_to_n_ratio(self):
        """With unit weights the delta-method variance is
        sum((x - m)^2) / n^2 where the t interval uses s^2 / n =
        sum((x - m)^2) / ((n - 1) n): same center and df, half-width
        smaller by exactly sqrt((n - 1) / n)."""
        values = [3.0, 5.0, 8.0, 13.0, 21.0]
        n = len(values)
        lo_w, hi_w = weighted_mean_ci(values, [1.0] * n)
        lo_t, hi_t = confidence_interval_95(values)
        assert (lo_w + hi_w) / 2 == pytest.approx((lo_t + hi_t) / 2)
        assert (hi_w - lo_w) / (hi_t - lo_t) == pytest.approx(
            math.sqrt((n - 1) / n), rel=1e-9
        )

    def test_coverage_on_importance_samples(self):
        """Mirror of the t-interval coverage gate: on n=40 importance
        samples from the dominating uniform proposal, the interval must
        cover E_p[theta] at close to the nominal rate.  The ratio
        estimator's linearized variance under-covers slightly (~94.3 %
        measured over these 2,000 seeded trials); the band is set
        around that with ~3-sigma binomial slack."""
        rng = random.Random(777)
        trials, covered = 2000, 0
        for _ in range(trials):
            thetas, weights = uniform_proposal_sample(rng, 40)
            low, high = weighted_mean_ci(thetas, weights)
            covered += int(low <= TRUE_MEAN <= high)
        assert 0.91 <= covered / trials <= 0.97

    def test_tail_ci_coverage_and_clipping(self):
        rng = random.Random(99)
        trials, covered = 2000, 0
        truth = 0.1 ** KAPPA
        for _ in range(trials):
            thetas, weights = severe_proposal_sample(rng, 60)
            delivery = [1.0 - theta for theta in thetas]
            low, high = weighted_tail_probability_ci(delivery, weights, 0.1)
            assert 0.0 <= low <= high <= 1.0
            covered += int(low <= truth <= high)
        assert covered / trials >= 0.94

    def test_degenerate_inputs_return_point_interval(self):
        assert weighted_mean_ci([4.0], [1.0]) == (4.0, 4.0)
        # A single positive weight among zeros: ESS = 1.
        assert weighted_mean_ci([4.0, 9.0], [1.0, 0.0]) == (4.0, 4.0)
        # Zero residual variance.
        assert weighted_mean_ci([5.0, 5.0, 5.0], [1.0, 2.0, 3.0]) == (
            5.0, 5.0
        )

    def test_concentration_widens_not_narrows(self):
        """Heavy weight concentration must not fake precision: df runs
        on ESS, so concentrating mass on two draws gives a wider
        interval than the same values equally weighted."""
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        equal = weighted_mean_ci(values, [1.0] * 6)
        skewed = weighted_mean_ci(values, [10.0, 10.0, 0.1, 0.1, 0.1, 0.1])
        assert (skewed[1] - skewed[0]) > (equal[1] - equal[0])


class TestMalformedWeights:
    """Weighted estimators raise on caller bugs instead of returning
    sentinels: a malformed weight vector means the campaign bookkeeping
    is broken, and no number computed from it can be trusted."""

    CASES = (
        ([1.0, 2.0], [1.0]),          # misaligned lengths
        ([], []),                     # empty
        ([1.0], [-0.5]),              # negative weight
        ([1.0], [math.inf]),          # infinite weight
        ([1.0], [math.nan]),          # NaN weight
        ([1.0, 2.0], [0.0, 0.0]),     # all mass gone
    )

    @pytest.mark.parametrize("values,weights", CASES)
    def test_raises_value_error(self, values, weights):
        with pytest.raises(ValueError):
            weighted_mean(values, weights)
        with pytest.raises(ValueError):
            weighted_quantile(values, weights, 0.5)
        with pytest.raises(ValueError):
            weighted_mean_ci(values, weights)

    def test_zero_weights_allowed_when_mass_remains(self):
        assert weighted_mean([1.0, 99.0], [1.0, 0.0]) == 1.0
