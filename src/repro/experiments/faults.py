"""Failure injection: radio outages for robustness experiments.

The paper's mesh is static and failure-free, but a credible ODMRP
implementation must survive router crashes: the soft-state design
(periodic JOIN QUERY refresh + forwarding-group timeout) is exactly what
repairs routes after an outage.  The test suite uses this module to
verify that property; it is also available for user experiments.

Two layers live here:

* :class:`FailureInjector` -- the imperative scheduler that turns planned
  windows into ``set_active`` events on a live simulator.
* :class:`FaultPlan` (with :class:`OutageWindow` / :class:`FlappingSpec`)
  -- a declarative, serializable fault schedule that rides inside a
  :class:`~repro.experiments.scenarios.SimulationScenarioConfig`, so
  experiment specs (and the differential fuzzer) can sweep over faulty
  scenarios without writing scheduling code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.net.node import Node
from repro.sim.engine import Simulator


def merge_intervals(
    intervals: List[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Union of half-open ``(start, end)`` intervals, sorted and disjoint.

    The canonical downtime algebra: a node that is already down cannot
    go "more down" (``Node.set_active`` is idempotent), so every
    downtime quantity in this module is computed on the merged union,
    never the naive per-window sum that double-counts overlaps.
    """
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


@dataclass
class OutageWindow:
    """One planned radio outage."""

    node_id: int
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node id must be >= 0, got {self.node_id}")
        if self.start_s < 0.0:
            raise ValueError(f"outage cannot start before t=0 ({self.start_s})")
        if self.end_s <= self.start_s:
            raise ValueError(
                f"outage must end after it starts ({self.start_s} .. {self.end_s})"
            )


@dataclass
class FlappingSpec:
    """Declarative repeated outages: down for a fraction of every period."""

    node_id: int
    start_s: float
    period_s: float
    down_fraction: float
    until_s: float

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node id must be >= 0, got {self.node_id}")
        if not 0.0 < self.down_fraction < 1.0:
            raise ValueError("down fraction must be in (0, 1)")
        if self.period_s <= 0:
            raise ValueError("period must be positive")
        if self.until_s <= self.start_s:
            raise ValueError(
                f"flapping must end after it starts "
                f"({self.start_s} .. {self.until_s})"
            )


@dataclass
class FaultPlan:
    """A serializable fault schedule for one scenario.

    Carried by ``SimulationScenarioConfig.faults``; an empty plan (the
    default) schedules nothing and leaves the run's event stream
    bit-identical to a configuration without the field.
    """

    outages: Tuple[OutageWindow, ...] = ()
    flapping: Tuple[FlappingSpec, ...] = ()

    def __post_init__(self) -> None:
        self.outages = tuple(self.outages)
        self.flapping = tuple(self.flapping)

    def is_empty(self) -> bool:
        return not self.outages and not self.flapping

    def validate_for(self, num_nodes: int) -> "FaultPlan":
        """Check every referenced node exists; returns self for chaining."""
        for spec in (*self.outages, *self.flapping):
            if spec.node_id >= num_nodes:
                raise ValueError(
                    f"fault plan references node {spec.node_id} but the "
                    f"scenario has only {num_nodes} nodes"
                )
        return self

    def apply(self, injector: "FailureInjector", nodes: Dict[int, Node]) -> None:
        """Schedule every planned fault on the injector's simulator."""
        for outage in self.outages:
            injector.schedule_outage(
                nodes[outage.node_id], outage.start_s, outage.end_s
            )
        for flap in self.flapping:
            injector.schedule_flapping(
                nodes[flap.node_id],
                flap.start_s,
                flap.period_s,
                flap.down_fraction,
                flap.until_s,
            )

    def node_intervals(self) -> Dict[int, List[Tuple[float, float]]]:
        """Per-node merged downtime intervals the plan would schedule.

        Flapping specs are expanded into their individual down-phases
        (the exact windows :meth:`FailureInjector.schedule_flapping`
        would produce) before merging, so the result is the plan's full
        downtime footprint without needing a simulator.
        """
        raw: Dict[int, List[Tuple[float, float]]] = {}
        for outage in self.outages:
            raw.setdefault(outage.node_id, []).append(
                (outage.start_s, outage.end_s)
            )
        for flap in self.flapping:
            windows = raw.setdefault(flap.node_id, [])
            start = flap.start_s
            while start < flap.until_s:
                down_end = min(
                    start + flap.down_fraction * flap.period_s, flap.until_s
                )
                windows.append((start, down_end))
                start += flap.period_s
        return {
            node_id: merge_intervals(intervals)
            for node_id, intervals in raw.items()
        }

    def merged_downtime_s(self, node_id: int | None = None) -> float:
        """Planned downtime after merging overlaps (union, not sum).

        With ``node_id`` the downtime of that one node; without it the
        total across all nodes (node-seconds of outage the plan
        injects) -- the plan's headline severity number.
        """
        per_node = self.node_intervals()
        if node_id is not None:
            return sum(
                end - start for start, end in per_node.get(node_id, [])
            )
        return sum(
            end - start
            for intervals in per_node.values()
            for start, end in intervals
        )

    def severity_summary(self) -> Dict[str, float]:
        """Compact per-plan severity numbers for reports and journals."""
        per_node = self.node_intervals()
        downtimes = [
            sum(end - start for start, end in intervals)
            for intervals in per_node.values()
        ]
        return {
            "nodes_affected": float(len(per_node)),
            "windows": float(
                sum(len(intervals) for intervals in per_node.values())
            ),
            "total_downtime_s": sum(downtimes),
            "max_node_downtime_s": max(downtimes, default=0.0),
        }

    def covers_interval(
        self, node_id: int, start_s: float, end_s: float
    ) -> bool:
        """True when the merged downtime fully covers ``[start_s, end_s]``."""
        if end_s <= start_s:
            return False
        for low, high in self.node_intervals().get(node_id, []):
            if low <= start_s and high >= end_s:
                return True
        return False

    def assert_source_uptime(
        self, source_ids: List[int], start_s: float, end_s: float
    ) -> "FaultPlan":
        """Reject plans that silence a multicast source for the whole
        traffic interval.

        A source that is down for all of ``[start_s, end_s]`` (the CBR
        interval: warmup to end of run) offers zero packets, so the run
        reports zero delivery that says nothing about the routing
        metric under test -- it would silently drag every aggregate
        down.  Such plans are a configuration error; raises a
        ``ValueError`` naming the node.  Returns self for chaining.
        """
        for source_id in source_ids:
            if self.covers_interval(source_id, start_s, end_s):
                raise ValueError(
                    f"fault plan keeps multicast source node {source_id} "
                    f"down for the entire traffic interval "
                    f"[{start_s:g}, {end_s:g}] s -- the run would offer "
                    "no packets and report zero delivery; shorten the "
                    "outage or pick a different node"
                )
        return self


@dataclass
class FailureInjector:
    """Schedules radio down/up transitions on simulator time."""

    sim: Simulator
    windows: List[OutageWindow] = field(default_factory=list)

    def schedule_outage(self, node: Node, start_s: float, end_s: float) -> None:
        """Take ``node`` down during ``[start_s, end_s)`` (absolute times)."""
        window = OutageWindow(node.node_id, start_s, end_s)
        self.windows.append(window)
        self.sim.schedule_at(start_s, node.set_active, False)
        self.sim.schedule_at(end_s, node.set_active, True)

    def schedule_flapping(
        self,
        node: Node,
        start_s: float,
        period_s: float,
        down_fraction: float,
        until_s: float,
    ) -> int:
        """Repeated outages: down for ``down_fraction`` of every period.

        Returns the number of outages scheduled.  Models a marginal
        router (overheating, flaky power) rather than a clean crash.
        """
        if not 0.0 < down_fraction < 1.0:
            raise ValueError("down fraction must be in (0, 1)")
        if period_s <= 0:
            raise ValueError("period must be positive")
        count = 0
        start = start_s
        while start < until_s:
            down_end = min(start + down_fraction * period_s, until_s)
            self.schedule_outage(node, start, down_end)
            count += 1
            start += period_s
        return count

    def total_downtime_s(self, node_id: int) -> float:
        """Scheduled downtime for one node (diagnostics).

        Overlapping windows are merged before summing: a node that is
        already down cannot go "more down" (``Node.set_active`` is
        idempotent), so the union of the windows -- not their naive sum,
        which double-counts overlaps -- is the planned-downtime quantity.
        """
        merged = merge_intervals(
            [(w.start_s, w.end_s) for w in self.windows if w.node_id == node_id]
        )
        return sum(end - start for start, end in merged)
