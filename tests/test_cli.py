"""Tests for the command-line interface."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import build_parser, main

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_sim_options_parsed(self):
        args = build_parser().parse_args(
            ["fig2-sim", "--nodes", "20", "--duration", "60",
             "--topologies", "2"]
        )
        assert args.nodes == 20
        assert args.duration == 60.0
        assert args.topologies == 2

    def test_testbed_options_parsed(self):
        args = build_parser().parse_args(
            ["testbed", "--duration", "120", "--runs", "3", "--seed", "7"]
        )
        assert args.duration == 120.0
        assert args.runs == 3
        assert args.seed == 7


class TestAnalyticCommands:
    def test_fig1_prints_paper_values(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "6.000" in out and "5.000" in out
        assert "METX" in out

    def test_fig3_prints_paper_values(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "3.750" in out and "0.512" in out


class TestSimulationCommands:
    def test_fig2_sim_tiny_run(self, capsys):
        code = main([
            "fig2-sim", "--nodes", "14", "--duration", "40",
            "--topologies", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Throughput-simulations" in out
        assert "Delay" in out
        assert "odmrp" in out and "spp" in out

    def test_table1_tiny_run(self, capsys):
        code = main([
            "table1", "--nodes", "14", "--duration", "40",
            "--topologies", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "overhead" in out
        assert "ett" in out and "spp" in out


class TestRunCommand:
    def test_dry_run_with_example_spec(self, capsys):
        code = main([
            "run", "--spec", str(EXAMPLES_DIR / "paper_spec.toml"),
            "--dry-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "experiment: paper-baseline" in out
        assert "6 protocols x 10 topologies = 60" in out
        assert "dry run" in out

    def test_dry_run_protocol_override(self, capsys):
        code = main([
            "run", "--spec", str(EXAMPLES_DIR / "maodv_sweep.toml"),
            "--protocols", "maodv,maodv-spp", "--seeds", "4",
            "--dry-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 protocols x 1 topologies = 2" in out
        assert "maodv-spp" in out
        assert "MaodvRouter" in out

    def test_typoed_protocol_fails_with_suggestion(self, capsys):
        code = main([
            "run", "--protocols", "sppp", "--dry-run",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "unknown protocol 'sppp'" in err
        assert "did you mean" in err

    def test_missing_spec_file_fails_cleanly(self, capsys):
        code = main(["run", "--spec", "no/such/spec.toml", "--dry-run"])
        assert code == 1
        assert "ERROR" in capsys.readouterr().err

    def test_bad_seeds_rejected(self, capsys):
        code = main(["run", "--seeds", "1,two", "--dry-run"])
        assert code == 1
        assert "--seeds" in capsys.readouterr().err

    def test_run_tiny_spec_end_to_end(self, tmp_path, capsys):
        from repro.experiments.spec import ExperimentSpec
        from repro.experiments.scenarios import SimulationScenarioConfig

        spec = ExperimentSpec(
            name="cli-tiny",
            protocols=("odmrp", "spp"),
            seeds=(1,),
            config=SimulationScenarioConfig(
                num_nodes=8, area_width_m=450.0, area_height_m=450.0,
                num_groups=1, members_per_group=3,
                duration_s=10.0, warmup_s=4.0,
            ),
        )
        spec_path = tmp_path / "tiny.toml"
        report_path = tmp_path / "report.md"
        spec.save(str(spec_path))
        code = main([
            "run", "--spec", str(spec_path),
            "--report", str(report_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "# cli-tiny" in out
        assert report_path.exists()
        assert "Normalized throughput" in report_path.read_text()


class TestProtocolsCommand:
    def test_lists_registry(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        assert "registered protocols" in out
        for name in ("odmrp", "spp", "maodv-spp", "wcett"):
            assert name in out
        assert "MaodvRouter" in out and "OdmrpRouter" in out


class TestTestbedCommands:
    def test_fig4(self, capsys):
        assert main(["fig4", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "2-5" in out and "lossy" in out

    def test_fig5_short_run(self, capsys):
        code = main(["fig5", "--duration", "90", "--runs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "odmrp" in out and "pp" in out
        assert "lossy-link share" in out

    def test_testbed_short_run(self, capsys):
        code = main(["testbed", "--duration", "60", "--runs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Throughput-testbed" in out
