"""Tests for packets, topology generators, channel, and node dispatch."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.mac.csma import BROADCAST_ID
from repro.net.channel import ChannelError
from repro.net.network import Network, NetworkConfig
from repro.net.packet import Packet, PacketKind
from repro.net.topology import (
    Position,
    average_degree,
    chain_topology,
    grid_topology,
    is_connected,
    neighbors_within,
    random_topology,
)
from tests.conftest import link, make_chain_network, make_loss_network


class TestPacket:
    def test_uids_are_unique(self):
        a = Packet(PacketKind.DATA, 0, 100, 0.0)
        b = Packet(PacketKind.DATA, 0, 100, 0.0)
        assert a.uid != b.uid

    def test_copy_for_forwarding_preserves_identity(self):
        original = Packet(PacketKind.JOIN_QUERY, 3, 36, 1.5, payload="p")
        forwarded = original.copy_for_forwarding(payload="p2")
        assert forwarded.uid == original.uid
        assert forwarded.created_at == original.created_at
        assert forwarded.origin == original.origin
        assert forwarded.payload == "p2"

    def test_kind_classification(self):
        assert PacketKind.PROBE.is_probe
        assert PacketKind.PROBE_PAIR_LARGE.is_probe
        assert not PacketKind.DATA.is_probe
        assert PacketKind.JOIN_QUERY.is_control
        assert not PacketKind.DATA.is_control


class TestTopology:
    def test_chain_spacing(self):
        positions = chain_topology(4, 150.0)
        assert positions[3] == Position(450.0, 0.0)

    def test_grid_shape(self):
        positions = grid_topology(2, 3, 100.0)
        assert len(positions) == 6
        assert positions[-1] == Position(200.0, 100.0)

    def test_chain_connectivity(self):
        positions = chain_topology(5, 200.0)
        assert is_connected(positions, 200.0)
        assert not is_connected(positions, 199.0)

    def test_neighbors_within_excludes_self(self):
        positions = chain_topology(3, 100.0)
        assert neighbors_within(positions, 1, 100.0) == [0, 2]

    def test_random_topology_is_connected(self):
        rng = random.Random(11)
        positions = random_topology(30, 1000.0, 1000.0, rng=rng)
        assert is_connected(positions, 250.0)
        assert len(positions) == 30

    def test_random_topology_within_bounds(self):
        rng = random.Random(12)
        positions = random_topology(
            20, 500.0, 300.0, rng=rng, connectivity_range_m=None
        )
        assert all(0 <= p.x <= 500 and 0 <= p.y <= 300 for p in positions)

    def test_random_topology_impossible_raises(self):
        rng = random.Random(13)
        with pytest.raises(RuntimeError):
            random_topology(
                50, 10000.0, 10000.0, rng=rng,
                connectivity_range_m=10.0, max_attempts=3,
            )

    def test_average_degree(self):
        positions = chain_topology(3, 100.0)
        assert average_degree(positions, 100.0) == pytest.approx(4.0 / 3.0)

    @given(st.integers(min_value=1, max_value=30))
    def test_single_row_grid_equals_chain(self, n):
        assert grid_topology(1, n, 50.0) == chain_topology(n, 50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            chain_topology(0)
        with pytest.raises(ValueError):
            grid_topology(0, 3)
        with pytest.raises(ValueError):
            random_topology(0)


class TestChannel:
    def test_chain_audibility_matches_geometry(self):
        network = make_chain_network(4, 200.0)
        conn = network.channel.connectivity_map()
        assert conn == {0: [1], 1: [0, 2], 2: [1, 3], 3: [2]}

    def test_broadcast_reaches_neighbors_only(self):
        network = make_chain_network(4, 200.0)
        received = []
        for node in network.nodes:
            node.register_handler(
                PacketKind.DATA,
                lambda p, s, pw, me=node.node_id: received.append((me, s)),
            )
        network.nodes[1].send_broadcast(Packet(PacketKind.DATA, 1, 100, 0.0))
        network.run(0.1)
        assert sorted(received) == [(0, 1), (2, 1)]

    def test_hidden_terminal_collision(self):
        """Nodes 0 and 2 are outside carrier-sense range of each other
        (2 x 249 m > the ~445 m sense radius); their simultaneous frames
        collide at node 1."""
        network = make_chain_network(3, 249.0)
        received = []
        network.nodes[1].register_handler(
            PacketKind.DATA, lambda p, s, pw: received.append(s)
        )
        packet_a = Packet(PacketKind.DATA, 0, 500, 0.0)
        packet_b = Packet(PacketKind.DATA, 2, 500, 0.0)
        network.nodes[0].send_broadcast(packet_a)
        network.nodes[2].send_broadcast(packet_b)
        network.run(0.1)
        assert received == []
        middle = network.nodes[1].counters
        assert middle.get("phy.rx_failed_collision") == 2

    def test_sequential_frames_both_arrive(self):
        network = make_chain_network(3, 200.0)
        received = []
        network.nodes[1].register_handler(
            PacketKind.DATA, lambda p, s, pw: received.append(s)
        )
        network.nodes[0].send_broadcast(Packet(PacketKind.DATA, 0, 500, 0.0))
        network.sim.schedule(
            0.05,
            lambda: network.nodes[2].send_broadcast(
                Packet(PacketKind.DATA, 2, 500, 0.0)
            ),
        )
        network.run(0.2)
        assert sorted(received) == [0, 2]

    def test_half_duplex_transmitter_cannot_receive(self):
        """A node transmitting misses frames arriving meanwhile."""
        network = make_chain_network(2, 100.0)
        received = []
        for node in network.nodes:
            node.register_handler(
                PacketKind.DATA,
                lambda p, s, pw, me=node.node_id: received.append(me),
            )
        # Both queue a long frame at t=0; CSMA backoff will separate them
        # only if one senses the other -- at 100 m they do sense each
        # other, so instead fire node 1's transmission mid-flight of 0's
        # by bypassing the MAC.
        big = Packet(PacketKind.DATA, 0, 1500, 0.0)
        network.channel.begin_transmission(
            network.nodes[0], big, BROADCAST_ID, 0.006, notify_sender=False
        )
        network.sim.schedule(
            0.001,
            lambda: network.channel.begin_transmission(
                network.nodes[1],
                Packet(PacketKind.DATA, 1, 100, 0.0),
                BROADCAST_ID,
                0.001,
                notify_sender=False,
            ),
        )
        network.run(0.1)
        # Node 1 was transmitting while 0's frame was in the air: loses it.
        assert received.count(1) == 0
        assert network.nodes[0].counters.get("phy.rx_failed_collision") == 0

    def test_concurrent_transmission_rejected(self):
        network = make_chain_network(2, 100.0)
        node = network.nodes[0]
        packet = Packet(PacketKind.DATA, 0, 100, 0.0)
        network.channel.begin_transmission(node, packet, BROADCAST_ID, 0.01)
        with pytest.raises(ChannelError):
            network.channel.begin_transmission(node, packet, BROADCAST_ID, 0.01)

    def test_register_after_finalize_rejected(self):
        network = make_chain_network(2, 100.0)
        from repro.net.node import Node

        with pytest.raises(ChannelError):
            network.channel.register_node(
                Node(99, Position(0, 0), network.sim)
            )

    def test_fading_network_differs_from_clean(self):
        """With Rayleigh fading some marginal-range frames are lost."""
        clean = make_chain_network(2, 249.0)
        faded = Network(
            chain_topology(2, 249.0),
            seed=7,
            config=NetworkConfig(rayleigh_fading=True),
        )
        results = {}
        for name, network in (("clean", clean), ("faded", faded)):
            count = 0

            def on_rx(p, s, pw):
                nonlocal count
                count += 1

            network.nodes[1].register_handler(PacketKind.DATA, on_rx)
            for i in range(200):
                network.sim.schedule(
                    i * 0.01,
                    lambda n=network: n.nodes[0].send_broadcast(
                        Packet(PacketKind.DATA, 0, 100, n.sim.now)
                    ),
                )
            network.run(5.0)
            results[name] = count
        assert results["clean"] == 200
        # At 249 m (just inside range) Rayleigh loses ~63% of frames.
        assert results["faded"] < 150


class TestEmpiricalLossNetwork:
    def test_loss_free_link_delivers_everything(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        count = 0

        def on_rx(p, s, pw):
            nonlocal count
            count += 1

        network.nodes[1].register_handler(PacketKind.DATA, on_rx)
        for i in range(100):
            network.sim.schedule(
                i * 0.01,
                lambda: network.nodes[0].send_broadcast(
                    Packet(PacketKind.DATA, 0, 100, network.sim.now)
                ),
            )
        network.run(5.0)
        assert count == 100

    def test_lossy_link_loses_expected_fraction(self):
        network = make_loss_network(2, {link(0, 1): 0.5})
        count = 0

        def on_rx(p, s, pw):
            nonlocal count
            count += 1

        network.nodes[1].register_handler(PacketKind.DATA, on_rx)
        for i in range(1000):
            network.sim.schedule(
                i * 0.01,
                lambda: network.nodes[0].send_broadcast(
                    Packet(PacketKind.DATA, 0, 100, network.sim.now)
                ),
            )
        network.run(15.0)
        assert 400 <= count <= 600

    def test_unlinked_pair_cannot_communicate(self):
        network = make_loss_network(3, {link(0, 1): 0.0})
        heard = []
        network.nodes[2].register_handler(
            PacketKind.DATA, lambda p, s, pw: heard.append(s)
        )
        network.nodes[0].send_broadcast(Packet(PacketKind.DATA, 0, 100, 0.0))
        network.run(0.1)
        assert heard == []


class TestNodeDispatch:
    def test_duplicate_handler_rejected(self):
        network = make_chain_network(2)
        node = network.nodes[0]
        node.register_handler(PacketKind.DATA, lambda p, s, pw: None)
        with pytest.raises(ValueError):
            node.register_handler(PacketKind.DATA, lambda p, s, pw: None)

    def test_unhandled_kind_counted(self):
        network = make_chain_network(2, 100.0)
        network.nodes[0].send_broadcast(Packet(PacketKind.PING, 0, 50, 0.0))
        network.run(0.1)
        assert network.nodes[1].counters.get("rx.unhandled") == 1

    def test_tx_byte_accounting(self):
        network = make_chain_network(2, 100.0)
        node = network.nodes[0]
        node.send_broadcast(Packet(PacketKind.DATA, 0, 512, 0.0))
        network.run(0.1)
        assert node.counters.get("tx.data.packets") == 1
        assert node.counters.get("tx.data.bytes") == 512
