"""Scalar <-> vectorized PHY parity: bit-identical, not approximately.

The vectorized reception backend (:mod:`repro.phy.vectorized`) promises
the *same bits* as the per-receiver scalar loop, at every level:

* the cloned uniform stream reproduces ``random.Random.random()``,
* each batched fading sampler reproduces its scalar model's draw
  sequence under arbitrary interleavings of times and link subsets,
* full runs of all six paper protocols produce equal ``RunResult``
  rows whichever backend is forced (via ``differential_check``'s
  ``phy_backend`` axis),
* and backend resolution refuses configurations it cannot replicate
  (custom fading models, channels overriding ``_sampled_power``).

numpy is a hard dependency (pyproject), so these tests import
``repro.phy.vectorized`` unconditionally.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

import repro.net.channel as channel_module
from repro.experiments.runner import run_protocol
from repro.experiments.scenarios import (
    PROTOCOL_NAMES,
    SimulationScenarioConfig,
)
from repro.experiments.spec import ExperimentSpec
from repro.net.channel import ChannelError, WirelessChannel
from repro.net.network import Network, NetworkConfig
from repro.net.topology import random_topology
from repro.phy.fading import (
    CorrelatedRayleighFading,
    FadingModel,
    NoFading,
    RayleighFading,
    RicianFading,
)
from repro.phy.vectorized import MtUniformStream, build_sampler
from repro.sim.engine import Simulator
from repro.validation.fuzzing import differential_check

PARITY_CONFIG = SimulationScenarioConfig(
    num_nodes=10,
    area_width_m=500.0,
    area_height_m=500.0,
    num_groups=1,
    members_per_group=3,
    rate_pps=10.0,
    duration_s=8.0,
    warmup_s=2.0,
)


def forced(config: SimulationScenarioConfig, backend: str):
    return dataclasses.replace(
        config, network=dataclasses.replace(config.network,
                                            phy_backend=backend)
    )


class TestUniformStream:
    def test_bit_identical_to_random_random(self):
        for seed in (0, 1, 12345):
            reference = random.Random(seed)
            stream = MtUniformStream(random.Random(seed))
            expected = [reference.random() for _ in range(500)]
            got = stream.uniforms(500).tolist()
            assert got == expected

    def test_clone_resumes_mid_stream(self):
        reference = random.Random(7)
        for _ in range(123):  # advance to an arbitrary stream offset
            reference.random()
        stream = MtUniformStream(reference)
        shadow = random.Random(7)
        for _ in range(123):
            shadow.random()
        assert stream.uniforms(97).tolist() == [
            shadow.random() for _ in range(97)
        ]

    def test_batch_boundaries_do_not_matter(self):
        a = MtUniformStream(random.Random(42))
        b = MtUniformStream(random.Random(42))
        chunked = (
            a.uniforms(1).tolist()
            + a.uniforms(63).tolist()
            + a.uniforms(0).tolist()
            + a.uniforms(36).tolist()
        )
        assert chunked == b.uniforms(100).tolist()


#: (now, selected link positions or None) interleavings that exercise
#: full batches, strict subsets, repeated times (dt == 0, the AR(1)
#: zero-innovation branch) and late first touches of individual links.
SAMPLE_PATTERNS = [
    [(0.0, None), (1.0, None), (4.5, None)],
    [(0.0, [0, 1, 2]), (2.0, [2, 3, 4, 5]), (2.0, [0, 5]),
     (3.0, None), (3.0, None)],
    [(10.0, [5]), (10.5, [0, 5]), (11.0, [1, 2, 3]), (30.0, None)],
]


def scalar_gain_sequence(fading: FadingModel, seed: int, count: int,
                         pattern):
    rng = random.Random(seed)
    out = []
    for now, sel in pattern:
        positions = range(count) if sel is None else sel
        out.append([
            fading.sample_link_gain((0, position), now, rng)
            for position in positions
        ])
    return out


def vectorized_gain_sequence(fading: FadingModel, seed: int, count: int,
                             pattern):
    sampler = build_sampler(fading, random.Random(seed))
    slot = sampler.new_slot(count)
    return [
        sampler.gains(slot, count, sel, now).tolist()
        for now, sel in pattern
    ]


class TestSamplerParity:
    @pytest.mark.parametrize("make_fading", [
        RayleighFading,
        lambda: RicianFading(k_factor=3.0),
        lambda: RicianFading(k_factor=0.0),
        lambda: CorrelatedRayleighFading(coherence_time_s=10.0),
        lambda: CorrelatedRayleighFading(coherence_time_s=0.25),
    ])
    @pytest.mark.parametrize("pattern", SAMPLE_PATTERNS)
    @pytest.mark.parametrize("seed", [1, 99])
    def test_gains_bit_identical(self, make_fading, pattern, seed):
        count = 6
        scalar = scalar_gain_sequence(make_fading(), seed, count, pattern)
        batched = vectorized_gain_sequence(
            make_fading(), seed, count, pattern
        )
        assert batched == scalar

    def test_correlated_state_migration(self):
        """dump_state/load_state round-trips the AR(1) processes."""
        fading = CorrelatedRayleighFading(coherence_time_s=5.0)
        sampler = build_sampler(fading, random.Random(3))
        slot = sampler.new_slot(4)
        sampler.gains(slot, 4, [0, 2], 1.0)
        states = sampler.dump_state(slot)
        assert states[1] is None and states[3] is None
        # Rebuild a slot with the links permuted, as a re-finalize does.
        rebuilt = sampler.new_slot(3)
        sampler.load_state(rebuilt, 0, states[2])
        sampler.load_state(rebuilt, 2, states[0])
        migrated = sampler.dump_state(rebuilt)
        assert migrated[0] == states[2]
        assert migrated[2] == states[0]
        assert migrated[1] is None

    def test_unsupported_model_gets_no_sampler(self):
        class OddFading(FadingModel):
            def sample_power_gain(self, rng):
                return 2.0

        class SubclassedRayleigh(RayleighFading):
            def sample_link_gain(self, link_key, now, rng):
                return 0.5

        assert build_sampler(OddFading(), random.Random(1)) is None
        # Exact-type matching: a subclass may have changed the math.
        assert build_sampler(SubclassedRayleigh(), random.Random(1)) is None
        assert build_sampler(NoFading(), random.Random(1)) is None


class TestBackendResolution:
    def _network(self, backend, num_nodes=12, **config_kwargs):
        positions = random_topology(
            num_nodes, 600.0, 600.0, rng=random.Random(4),
            connectivity_range_m=250.0,
        )
        config = NetworkConfig(phy_backend=backend, **config_kwargs)
        return Network(positions, seed=1, config=config)

    def test_auto_stays_scalar_on_small_meshes(self):
        network = self._network("auto")
        assert network.channel.phy_backend_resolved == "scalar"

    def test_auto_vectorizes_above_threshold(self, monkeypatch):
        monkeypatch.setattr(channel_module, "VECTOR_MIN_NODES", 4)
        network = self._network("auto")
        assert network.channel.phy_backend_resolved == "vectorized"

    def test_forced_vectorized_on_tiny_mesh(self):
        network = self._network("vectorized")
        assert network.channel.phy_backend_resolved == "vectorized"

    def test_deterministic_channel_resolves_scalar(self):
        # NoFading has nothing stochastic to batch; even a forced
        # "vectorized" request runs the sample-free scalar loop.
        network = self._network(
            "vectorized", rayleigh_fading=False,
        )
        assert network.channel.phy_backend_resolved == "scalar"

    def test_forced_vectorized_rejects_custom_fading(self):
        class OddFading(FadingModel):
            def sample_power_gain(self, rng):
                return 1.0

        with pytest.raises(ChannelError, match="no bit-identical"):
            self._network("vectorized", fading=OddFading())

    def test_forced_vectorized_rejects_sampled_power_override(self):
        class CustomChannel(WirelessChannel):
            def _sampled_power(self, sender, receiver, mean_mw):
                return mean_mw

        sim = Simulator(seed=1)
        channel = CustomChannel(sim, phy_backend="vectorized")
        with pytest.raises(ChannelError, match="_sampled_power"):
            channel.finalize()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ChannelError, match="unknown phy_backend"):
            WirelessChannel(Simulator(seed=1), phy_backend="simd")


class TestRunParity:
    def test_all_paper_protocols_bit_identical(self, tmp_path):
        """The satellite gate: differential_check's phy_backend axis
        across the six paper protocol variants."""
        spec = ExperimentSpec(
            name="phy-parity",
            description="scalar vs vectorized across the paper protocols",
            protocols=tuple(PROTOCOL_NAMES),
            seeds=(1,),
            config=PARITY_CONFIG,
        )
        divergences = differential_check(
            spec, jobs=2, work_dir=str(tmp_path),
            phy_backends=("scalar", "vectorized"),
        )
        assert divergences == [], "\n".join(divergences)

    def test_invariant_monitors_watch_the_batched_path(self):
        """channel-conservation's power ledgers and rng-isolation's
        stream audit must keep working when reception is batched."""
        from repro.validation.fuzzing import run_with_invariants

        spec = ExperimentSpec(
            name="phy-monitors",
            description="invariant monitors over the vectorized backend",
            protocols=("odmrp",),
            seeds=(1,),
            config=forced(PARITY_CONFIG, "vectorized"),
        )
        results = run_with_invariants(
            spec, monitors=("channel-conservation", "rng-isolation")
        )
        assert all(result.error is None for result in results)

    def test_parity_under_faults(self):
        """Outages flip receivers inactive mid-run; the batched path
        must mask exactly the draws the scalar path skips."""
        from repro.experiments.faults import (
            FaultPlan, FlappingSpec, OutageWindow,
        )
        config = dataclasses.replace(
            PARITY_CONFIG,
            faults=FaultPlan(
                outages=(OutageWindow(node_id=2, start_s=3.0, end_s=5.0),),
                flapping=(FlappingSpec(node_id=5, start_s=2.0,
                                       period_s=2.0, down_fraction=0.4,
                                       until_s=7.0),),
            ),
        )
        results = [
            run_protocol("etx", forced(config, backend))
            for backend in ("scalar", "vectorized")
        ]
        assert results[0] == results[1]
        assert results[0].error is None

    def test_parity_across_refinalize(self):
        """Re-running finalize() migrates the vectorized AR(1) state by
        receiver id, exactly as the scalar model's keyed dict survives
        a re-finalize."""
        positions = random_topology(
            12, 600.0, 600.0, rng=random.Random(8),
            connectivity_range_m=250.0,
        )
        from repro.net.packet import Packet, PacketKind

        totals = {}
        for backend in ("scalar", "vectorized"):
            network = Network(
                positions, seed=5, config=NetworkConfig(phy_backend=backend)
            )
            for node in network.nodes:
                node.sim.schedule(
                    0.01 * (node.node_id + 1),
                    lambda n=node: n.send_broadcast(
                        Packet(PacketKind.DATA, n.node_id, 256, n.sim.now)
                    ),
                )
            network.run(until=1.0)
            network.channel.finalize()  # the only legal topology "change"
            for node in network.nodes:
                node.sim.schedule(
                    0.01 * (node.node_id + 1),
                    lambda n=node: n.send_broadcast(
                        Packet(PacketKind.DATA, n.node_id, 256, n.sim.now)
                    ),
                )
            network.run(until=2.5)
            totals[backend] = {
                "rx": network.total_counter_prefix("rx."),
                "tx": network.total_counter_prefix("tx."),
                "channel": dict(network.channel.counters.as_dict()),
                "power": [node.current_power_mw for node in network.nodes],
            }
        assert totals["scalar"] == totals["vectorized"]
