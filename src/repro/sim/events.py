"""Event objects for the discrete-event engine.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
breaks ties between events scheduled for the same instant with the same
priority, so execution order is always the order of scheduling -- a property
several protocol state machines (and the reproducibility guarantees of the
whole simulator) rely on.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable


class EventPriority:
    """Symbolic priorities for same-time events.

    Lower values run first.  The engine uses these to guarantee, for
    example, that a transmission's end-of-reception is processed before a
    new transmission scheduled for the same instant begins.
    """

    PHY = 0
    MAC = 10
    ROUTING = 20
    APPLICATION = 30
    DEFAULT = 50
    STATS = 90


class Event:
    """A single scheduled callback.

    Events should not be created directly; use
    :meth:`repro.sim.engine.Simulator.schedule`.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    _sequence = itertools.count()

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = EventPriority.DEFAULT,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = next(Event._sequence)
        self.callback = callback
        self.args = args
        self.cancelled = False

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        # Inlined sort_key(): this comparator runs on every heap sift and
        # the two method calls dominate its cost.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} prio={self.priority} {name}{state}>"


class EventHandle:
    """Cancellation handle returned by ``Simulator.schedule``.

    Cancellation is lazy: the event stays in the heap but is skipped when
    popped.  This makes cancel O(1), which matters because MAC backoff and
    routing timers cancel events constantly.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled execution time of the underlying event."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> bool:
        """Cancel the event; returns False if it was already cancelled."""
        if self._event.cancelled:
            return False
        self._event.cancelled = True
        return True
