"""Pluggable sweep executors: one lifecycle, many backends.

Everything above the run level -- ``runner.compare_protocols``, the
experiment spec runner, and the CLI -- schedules sweeps through the
:class:`SweepExecutor` protocol instead of calling a process pool
directly.  An executor owns the full lifecycle of one sweep:

``submit(specs)``
    Publish the work set.  For the local backend this just records the
    specs; for the ``dir://`` backend it writes the sweep manifest into
    the shared directory so external workers can discover it.
``collect(progress)``
    Drive the sweep to completion and return ordered
    :class:`~repro.experiments.parallel.RunOutcome` objects -- one per
    spec, in spec order, exactly like the plain and resilient executors
    always have.
``abort()`` / ``close()``
    Tear down in-flight work / release resources.  Executors are
    context managers; :meth:`SweepExecutor.execute` is the one-call
    convenience used by ``compare_protocols``.

Backends are addressed by URI:

``local-pool``
    Today's in-process execution, verbatim: the plain
    :func:`~repro.experiments.parallel.execute_runs_detailed` pool
    when no resilience knob is set, the supervised
    :func:`~repro.experiments.resilience.execute_runs_resilient`
    otherwise.  Bit-identical to the pre-refactor call paths.
``dir://<shared-dir>``
    The distributed backend (:mod:`repro.experiments.distributed`): a
    lease-based work queue over a shared directory that any number of
    worker processes -- spawned by the coordinator or started by hand
    with ``repro worker`` on other hosts -- drain cooperatively.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.parallel import (
    ProgressCallback,
    RunOutcome,
    RunSpec,
    execute_runs_detailed,
)
from repro.experiments.resilience import (
    ResilienceConfig,
    RetryPolicy,
    WorkerFn,
    _execute_spec,
    execute_runs_resilient,
)

LOCAL_POOL_KIND = "local-pool"
DIR_KIND = "dir"

#: URI spellings accepted for the local backend.
_LOCAL_ALIASES = frozenset({"", "local-pool", "local", "pool"})


class BackendError(ValueError):
    """An unusable backend URI or backend/argument mismatch."""


@dataclass(frozen=True)
class Backend:
    """A parsed sweep backend address."""

    kind: str
    #: Shared sweep directory for ``dir`` backends; None for local.
    root: Optional[str] = None

    def uri(self) -> str:
        if self.kind == DIR_KIND:
            return f"dir://{self.root}"
        return LOCAL_POOL_KIND


def parse_backend(uri: Optional[str]) -> Backend:
    """Parse a backend URI (``local-pool`` or ``dir://<shared-dir>``).

    ``None`` and the empty string mean the default local pool, so specs
    and CLI flags can simply omit the field.
    """
    if uri is None or uri in _LOCAL_ALIASES:
        return Backend(kind=LOCAL_POOL_KIND)
    if uri.startswith("dir://"):
        root = uri[len("dir://"):]
        if not root:
            raise BackendError(
                "dir:// backend needs a shared directory, e.g. "
                "dir:///mnt/shared/sweep or dir://./sweepdir"
            )
        return Backend(kind=DIR_KIND, root=os.path.expanduser(root))
    raise BackendError(
        f"unknown sweep backend {uri!r}; expected 'local-pool' or "
        "'dir://<shared-dir>'"
    )


class SweepExecutor:
    """Lifecycle protocol every sweep backend implements.

    Subclasses implement :meth:`submit` and :meth:`collect`;
    :meth:`abort` and :meth:`close` are no-ops unless the backend holds
    external resources (worker processes, claim files).
    """

    def submit(self, specs: Sequence[RunSpec]) -> None:
        raise NotImplementedError

    def collect(
        self, progress: Optional[ProgressCallback] = None
    ) -> List[RunOutcome]:
        raise NotImplementedError

    def abort(self) -> None:  # pragma: no cover - default no-op
        pass

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    def execute(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[ProgressCallback] = None,
    ) -> List[RunOutcome]:
        """submit + collect + close in one call."""
        self.submit(specs)
        try:
            return self.collect(progress=progress)
        finally:
            self.close()

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class LocalPoolExecutor(SweepExecutor):
    """The in-process backend: plain pool, or supervised when asked.

    ``resilience=None`` (and no journal/resume request) selects the
    plain :func:`execute_runs_detailed` path -- no supervision
    processes, no journal, exactly the historical fast path.  Setting
    any of ``resilience``, ``journal_path``, or ``resume`` selects the
    supervised :func:`execute_runs_resilient` path.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        use_cache: bool = False,
        cache_dir: Optional[str] = None,
        resilience: Optional[ResilienceConfig] = None,
        journal_path: Optional[str] = None,
        resume: bool = False,
        worker: Optional[WorkerFn] = None,
    ) -> None:
        self.jobs = jobs
        self.use_cache = use_cache
        self.cache_dir = cache_dir
        self.resilience = resilience
        self.journal_path = journal_path
        self.resume = resume
        self.worker = worker
        self._specs: Optional[List[RunSpec]] = None

    @property
    def resilient(self) -> bool:
        return (
            self.resilience is not None
            or self.journal_path is not None
            or self.resume
            or self.worker is not None
        )

    def submit(self, specs: Sequence[RunSpec]) -> None:
        if self._specs is not None:
            raise RuntimeError("executor already has a submitted sweep")
        self._specs = list(specs)

    def collect(
        self, progress: Optional[ProgressCallback] = None
    ) -> List[RunOutcome]:
        if self._specs is None:
            raise RuntimeError("collect() before submit()")
        if self.resilient:
            return execute_runs_resilient(
                self._specs,
                jobs=self.jobs,
                use_cache=self.use_cache,
                cache_dir=self.cache_dir,
                progress=progress,
                resilience=self.resilience,
                journal_path=self.journal_path,
                resume=self.resume,
                worker=self.worker or _execute_spec,
            )
        return execute_runs_detailed(
            self._specs,
            jobs=self.jobs,
            use_cache=self.use_cache,
            cache_dir=self.cache_dir,
            progress=progress,
        )


def create_executor(
    backend: Optional[object] = None,
    *,
    jobs: Optional[int] = 1,
    use_cache: bool = False,
    cache_dir: Optional[str] = None,
    run_timeout_s: Optional[float] = None,
    max_retries: Optional[int] = None,
    resume: bool = False,
    journal_path: Optional[str] = None,
    workers: Optional[int] = None,
    lease_timeout_s: Optional[float] = None,
    worker_fn: Optional[WorkerFn] = None,
) -> SweepExecutor:
    """Build the executor for a backend URI (or parsed :class:`Backend`).

    For ``local-pool`` the resilient path engages exactly when a
    resilience knob (``run_timeout_s`` / ``max_retries`` / ``resume`` /
    ``journal_path``) is set, preserving ``compare_protocols``'s
    historical routing bit-for-bit.  ``workers`` and
    ``lease_timeout_s`` only apply to ``dir://`` backends.
    """
    parsed = (
        backend if isinstance(backend, Backend)
        else parse_backend(backend if backend is None else str(backend))
    )
    if parsed.kind == LOCAL_POOL_KIND:
        resilient = (
            run_timeout_s is not None
            or max_retries is not None
            or resume
            or journal_path is not None
            or worker_fn is not None
        )
        resilience = None
        if resilient:
            retry = (
                RetryPolicy(max_retries=max_retries)
                if max_retries is not None else RetryPolicy()
            )
            resilience = ResilienceConfig(
                run_timeout_s=run_timeout_s, retry=retry
            )
        return LocalPoolExecutor(
            jobs=jobs,
            use_cache=use_cache,
            cache_dir=cache_dir,
            resilience=resilience,
            journal_path=journal_path,
            resume=resume,
            worker=worker_fn,
        )
    # Imported lazily: distributed pulls in telemetry + manifest
    # machinery the plain local path never needs.
    from repro.experiments.distributed import DirExecutor, LeaseConfig

    lease_kwargs = {}
    if lease_timeout_s is not None:
        lease_kwargs["lease_timeout_s"] = lease_timeout_s
    if run_timeout_s is not None:
        lease_kwargs["run_timeout_s"] = run_timeout_s
    if max_retries is not None:
        lease_kwargs["max_retries"] = max_retries
    assert parsed.root is not None
    return DirExecutor(
        root=parsed.root,
        workers=workers if workers is not None else (jobs or 1),
        lease=LeaseConfig(**lease_kwargs),
        use_cache=use_cache,
        resume=resume,
        worker_fn=worker_fn or _execute_spec,
    )
