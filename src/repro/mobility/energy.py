"""Per-node energy accounting: tx/rx/idle joule costs, dead at zero.

``EnergyModel.step`` runs as an observer on the scenario's chunked run
loop (interval ``EnergySpec.accounting_interval_s``).  Each pass charges
every node, in node-id order, for

* the bytes it transmitted and received since the last pass (read from
  the ``tx.*.bytes`` / ``rx.*.bytes`` counters the node already
  maintains -- no model code knows it is being metered), and
* the idle baseline ``idle_w * dt`` (standby electronics drain whether
  or not the radio is up).

A node whose battery reaches zero is taken down through the *existing*
fault path (``Node.set_active(False)``), so protocol soft state reacts
to energy death exactly as it does to an injected outage; if a fault
plan later revives the radio, the next accounting pass kills it again
(dead batteries stay dead).  Because the pass runs at exact virtual-time
boundaries and does pure arithmetic, an energy-enabled run is
deterministic across every execution path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.mobility.config import EnergySpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.network import Network
    from repro.net.node import Node


def _traffic_bytes(node: "Node", prefix: str) -> float:
    """Sum a node's ``<prefix>*.bytes`` counters (tx. or rx.)."""
    return sum(
        value
        for name, value in node.counters.as_dict().items()
        if name.startswith(prefix) and name.endswith(".bytes")
    )


class EnergyModel:
    """Battery bookkeeping for every node in one network."""

    def __init__(self, spec: EnergySpec, network: "Network") -> None:
        self.spec = spec
        self.network = network
        self._remaining: Dict[int, float] = {
            node.node_id: spec.initial_j for node in network.nodes
        }
        self._last_tx: Dict[int, float] = {
            node.node_id: 0.0 for node in network.nodes
        }
        self._last_rx: Dict[int, float] = {
            node.node_id: 0.0 for node in network.nodes
        }
        self._last_time = 0.0

    def step(self) -> None:
        """Charge every node for the interval since the previous pass."""
        now = self.network.sim.now
        dt = now - self._last_time
        self._last_time = now
        if dt <= 0.0:
            return
        spec = self.spec
        for node in self.network.nodes:
            node_id = node.node_id
            tx = _traffic_bytes(node, "tx.")
            rx = _traffic_bytes(node, "rx.")
            drain = (
                (tx - self._last_tx[node_id]) * spec.tx_j_per_byte
                + (rx - self._last_rx[node_id]) * spec.rx_j_per_byte
                + spec.idle_w * dt
            )
            self._last_tx[node_id] = tx
            self._last_rx[node_id] = rx
            remaining = self._remaining[node_id]
            if remaining <= 0.0:
                # Already depleted; keep the radio down even if a fault
                # plan's recovery event flipped it back on.
                if node.active:
                    node.set_active(False)
                continue
            node.counters.add("energy.consumed_j", min(drain, remaining))
            remaining -= drain
            if remaining <= 0.0:
                remaining = 0.0
                node.counters.add("energy.depleted")
                node.set_active(False)
            self._remaining[node_id] = remaining

    # -- diagnostics (telemetry probes) --------------------------------

    def remaining_j(self, node_id: int) -> float:
        return self._remaining[node_id]

    def total_remaining_j(self) -> float:
        return sum(self._remaining.values())

    def alive_count(self) -> int:
        return sum(1 for value in self._remaining.values() if value > 0.0)
