"""Smoke tests for the example scripts and shipped spec files.

Each example script is importable (no work at import time) and exposes
a ``main()``.  The fast ones are executed end-to-end; the slow ones
(multi-minute sweeps) are only imported -- their underlying entry points
are exercised by the benchmark suite anyway.  Every ``examples/*.toml``
experiment spec must load, validate against the protocol registry, and
round-trip.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = [
    "quickstart",
    "metric_comparison",
    "testbed_emulation",
    "link_probing_demo",
]


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesImport:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_importable_with_main(self, name):
        module = load_example(name)
        assert callable(module.main)


SPEC_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.toml"))


class TestExampleSpecs:
    def test_spec_examples_are_shipped(self):
        names = {path.name for path in SPEC_EXAMPLES}
        assert {"paper_spec.toml", "maodv_sweep.toml"} <= names

    @pytest.mark.parametrize(
        "path", SPEC_EXAMPLES, ids=[p.stem for p in SPEC_EXAMPLES]
    )
    def test_spec_loads_validates_and_round_trips(self, path):
        from repro.experiments.spec import ExperimentSpec

        spec = ExperimentSpec.load(str(path)).validate()
        assert spec.total_runs > 0
        assert ExperimentSpec.from_toml(spec.to_toml()) == spec
        # The dry-run plan renders without touching a simulator.
        assert spec.name in spec.describe()

    def test_paper_spec_is_the_section_41_baseline(self):
        from repro.experiments.spec import ExperimentSpec

        spec = ExperimentSpec.load(str(EXAMPLES_DIR / "paper_spec.toml"))
        assert spec.protocols == ("odmrp", "ett", "etx", "metx", "pp", "spp")
        assert len(spec.seeds) == 10
        assert spec.config.num_nodes == 50
        assert spec.config.duration_s == 400.0


class TestFastExamplesRun:
    def test_link_probing_demo_runs(self, capsys):
        module = load_example("link_probing_demo")
        module.main()
        out = capsys.readouterr().out
        assert "t = 400 s" in out
        assert "terrible" in out

    def test_quickstart_runs(self, capsys):
        module = load_example("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "ODMRP_SPP delivers" in out
        # The headline direction must hold in the shipped example.
        assert "+";  # gain sign rendered
        assert "throughput" in out
