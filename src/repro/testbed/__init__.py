"""Emulation of the paper's eight-node Purdue mesh testbed (Section 5).

The real testbed is hardware we cannot have; what the paper's Section 5
results actually depend on is the *loss structure* of Figure 4 -- which
pairs of nodes can hear each other and which links are lossy (40-60 %
loss, time-varying) versus low-loss.  This package reproduces exactly
that:

* :mod:`repro.testbed.floormap` -- the Figure 4 topology: node ids,
  approximate office positions, and the solid/dashed link classification.
* :mod:`repro.testbed.linkmodel` -- an empirical-loss channel driving the
  same CSMA MAC: per-link Bernoulli loss with a bounded random walk for
  the "fairly quick" temporal variation the paper describes.
* :mod:`repro.testbed.emulator` -- assembles the Section 5 experiment
  (two groups: 2 -> {3, 5} and 4 -> {1, 7}).
* :mod:`repro.testbed.ping` -- the ping-based link classification the
  authors used to draw Figure 4.
"""

from repro.testbed.floormap import (
    TESTBED_NODE_IDS,
    TestbedLink,
    testbed_links,
    testbed_positions,
)
from repro.testbed.linkmodel import EmpiricalChannel, LinkProfile, TimeVaryingLoss
from repro.testbed.emulator import (
    TestbedScenario,
    TestbedScenarioConfig,
    build_testbed_scenario,
)
from repro.testbed.ping import classify_links_by_ping

__all__ = [
    "TESTBED_NODE_IDS",
    "TestbedLink",
    "testbed_positions",
    "testbed_links",
    "TimeVaryingLoss",
    "LinkProfile",
    "EmpiricalChannel",
    "TestbedScenarioConfig",
    "TestbedScenario",
    "build_testbed_scenario",
    "classify_links_by_ping",
]
