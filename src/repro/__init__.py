"""Reproduction of "High-Throughput Multicast Routing Metrics in Wireless
Mesh Networks" (Roy, Koutsonikolas, Das, Hu -- IEEE ICDCS 2006).

The package rebuilds the paper's full stack: the five multicast
link-quality metrics (ETX, ETT, PP, METX, SPP) on top of ODMRP, a
discrete-event wireless mesh simulator, probing, an emulation of the
paper's eight-node testbed, and the evaluation harness that regenerates
every table and figure.

Most users want one of:

* :mod:`repro.core` -- the metrics themselves (pure algebra, no
  simulator needed).
* :func:`repro.experiments.run_protocol` /
  :func:`repro.experiments.compare_protocols` -- run the paper's
  Section 4 simulation scenario.
* :func:`repro.testbed.build_testbed_scenario` -- the Section 5 testbed
  experiment.
"""

from repro.core.metrics import (
    ALL_METRIC_NAMES,
    EttMetric,
    EtxMetric,
    HopCountMetric,
    LinkQuality,
    MetxMetric,
    PpMetric,
    RouteMetric,
    SppMetric,
    metric_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "RouteMetric",
    "LinkQuality",
    "HopCountMetric",
    "EtxMetric",
    "EttMetric",
    "PpMetric",
    "MetxMetric",
    "SppMetric",
    "metric_by_name",
    "ALL_METRIC_NAMES",
]
