"""A mesh router node: radio state, MAC, and protocol dispatch.

The node owns the PHY-side bookkeeping for the shared channel:

* the set of transmissions currently audible at this position and their
  fading-sampled powers (``current_power_mw`` is their sum),
* the pending :class:`~repro.phy.reception.Reception` objects for frames
  this node may decode, and
* the carrier-sense state it reports to its MAC.

Protocols register per-:class:`~repro.net.packet.PacketKind` handlers and
send through :meth:`send_broadcast` / :meth:`send_unicast`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.mac.csma import BROADCAST_ID, CsmaMac
from repro.net.packet import Packet, PacketKind
from repro.net.topology import Position
from repro.phy.radio import RadioParams
from repro.phy.reception import Reception, ReceptionModel
from repro.sim.engine import Simulator
from repro.sim.trace import CounterSet

PacketHandler = Callable[[Packet, int, float], Any]


class Node:
    """One mesh router (static by default; movable via set_position)."""

    def __init__(
        self,
        node_id: int,
        position: Position,
        sim: Simulator,
        params: Optional[RadioParams] = None,
        mac: Optional[CsmaMac] = None,
    ) -> None:
        self.node_id = node_id
        self.position = position
        self.sim = sim
        self.params = params or RadioParams()
        self.reception_model = ReceptionModel(self.params)
        self.mac = mac or CsmaMac(sim)
        self.mac.node = self
        self.channel: Any = None  # set when registered with a channel
        self.counters = CounterSet()

        # PHY state
        self.transmitting = False
        self.current_power_mw = 0.0
        self._power_contributions: Dict[Any, float] = {}
        self.pending_receptions: Dict[Any, Reception] = {}
        self._last_busy = False
        #: Radio power state; a "failed" node neither sends nor receives.
        self.active = True

        # Protocol dispatch
        self._handlers: Dict[PacketKind, PacketHandler] = {}

    # ------------------------------------------------------------------
    # Upper-layer API

    def register_handler(self, kind: PacketKind, handler: PacketHandler) -> None:
        """Route received packets of ``kind`` to ``handler(packet, sender, rx_mw)``."""
        if kind in self._handlers:
            raise ValueError(
                f"node {self.node_id} already has a handler for {kind}"
            )
        self._handlers[kind] = handler

    def wrap_handler(
        self,
        kind: PacketKind,
        wrap: Callable[[PacketHandler], PacketHandler],
    ) -> None:
        """Replace the handler for ``kind`` with ``wrap(current_handler)``.

        Observability hook: the validation monitors use this to observe
        every delivered packet of a kind without the node or router
        knowing they are being watched.  The wrapper must call through to
        the original handler to preserve behaviour.
        """
        handler = self._handlers.get(kind)
        if handler is None:
            raise ValueError(
                f"node {self.node_id} has no handler for {kind} to wrap"
            )
        self._handlers[kind] = wrap(handler)

    def power_ledger(self) -> Dict[Any, float]:
        """Per-transmission audible-power contributions (a copy).

        Conservation audit hook: the entries must always sum to
        ``current_power_mw`` (within float drift) and must drain to
        nothing once the channel reports no transmission in flight.
        """
        return dict(self._power_contributions)

    def send_broadcast(
        self, packet: Packet, on_done: Optional[Callable[[bool], Any]] = None
    ) -> bool:
        """Queue a link-layer broadcast (one attempt, no ACK)."""
        self.counters.add(f"tx.{packet.kind.value}.packets")
        self.counters.add(f"tx.{packet.kind.value}.bytes", packet.size_bytes)
        return self.mac.enqueue(packet, BROADCAST_ID, on_done)

    def send_unicast(
        self,
        packet: Packet,
        dest_id: int,
        on_done: Optional[Callable[[bool], Any]] = None,
    ) -> bool:
        """Queue a link-layer unicast (ACKed, retried)."""
        self.counters.add(f"tx.{packet.kind.value}.packets")
        self.counters.add(f"tx.{packet.kind.value}.bytes", packet.size_bytes)
        return self.mac.enqueue(packet, dest_id, on_done)

    def set_position(self, position: Position) -> None:
        """Move the node (mobility).

        The one legal way to change a position after network assembly:
        it keeps the channel's spatial grid in sync via an O(1)
        re-bucket.  Derived radio state (audible sets, connectivity
        map, vectorized batch arrays) is *not* recomputed here -- after
        a batch of moves, call ``channel.invalidate_topology()`` once,
        which is how :class:`~repro.mobility.driver.MobilityDriver`
        amortizes one re-derivation over a whole tick.
        """
        if position == self.position:
            return
        self.position = position
        if self.channel is not None:
            self.channel.note_position_change(self)

    def set_active(self, active: bool) -> None:
        """Turn the radio on or off (failure injection).

        Going down kills any in-flight receptions (their signal is gone
        for the decoder) and silently drops frames the MAC tries to send;
        protocol state above the radio survives, as it would across a
        radio reset.
        """
        if active == self.active:
            return
        self.active = active
        if self.channel is not None:
            self.channel.note_active_change(active)
        if not active:
            self.counters.add("node.down_events")
            for reception in self.pending_receptions.values():
                reception.signal_mw = 0.0
        else:
            self.counters.add("node.up_events")
        self._update_sense_state()

    # ------------------------------------------------------------------
    # PHY-side interface (called by the channel)

    @property
    def medium_busy(self) -> bool:
        """Carrier-sense state: own transmission or enough foreign energy."""
        return self.transmitting or self.reception_model.can_sense(
            self.current_power_mw
        )

    def phy_add_power(self, transmission: Any, power_mw: float) -> None:
        """A transmission became audible here at the given faded power."""
        self._power_contributions[transmission] = power_mw
        self.current_power_mw += power_mw
        self._interference_changed()
        self._update_sense_state()

    def phy_remove_power(self, transmission: Any) -> None:
        """An audible transmission ended; withdraw its power."""
        power = self._power_contributions.pop(transmission, 0.0)
        self.current_power_mw -= power
        if self.current_power_mw < 0.0:  # guard against float drift
            self.current_power_mw = 0.0
        if not self._power_contributions:
            self.current_power_mw = 0.0
        self._update_sense_state()

    def phy_begin_own_tx(self) -> None:
        """Half duplex: starting to transmit kills any in-flight receptions."""
        self.transmitting = True
        for reception in self.pending_receptions.values():
            reception.signal_mw = 0.0
        self._update_sense_state()

    def phy_end_own_tx(self) -> None:
        self.transmitting = False
        self._update_sense_state()

    def phy_start_reception(self, reception: Reception) -> None:
        """Register a decodable frame arriving at this node."""
        self.pending_receptions[reception.transmission] = reception
        own = self._power_contributions.get(reception.transmission, 0.0)
        reception.note_interference(self.current_power_mw - own)

    def phy_finish_reception(
        self, transmission: Any, dest_id: int
    ) -> None:
        """Decide a pending reception and deliver on success."""
        reception = self.pending_receptions.pop(transmission, None)
        if reception is None:
            return
        if reception.signal_mw <= 0.0:
            self.counters.add("phy.rx_failed_half_duplex")
            return
        if self.reception_model.decide(reception):
            self.counters.add("phy.rx_ok")
            self.deliver(transmission.packet, transmission.sender_id, dest_id,
                         reception.signal_mw)
        elif reception.signal_mw < self.params.rx_threshold_mw:
            self.counters.add("phy.rx_failed_weak")
        else:
            self.counters.add("phy.rx_failed_collision")

    def _interference_changed(self) -> None:
        if not self.pending_receptions:
            return
        total = self.current_power_mw
        contributions = self._power_contributions
        for transmission, reception in self.pending_receptions.items():
            own = contributions.get(transmission, 0.0)
            reception.note_interference(total - own)

    def _update_sense_state(self) -> None:
        # Inlined `medium_busy`: this runs on every power add/remove.
        busy = self.transmitting or self.reception_model.can_sense(
            self.current_power_mw
        )
        if busy != self._last_busy:
            self._last_busy = busy
            self.mac.on_medium_state(busy)

    # ------------------------------------------------------------------
    # Delivery

    def deliver(
        self, packet: Packet, sender_id: int, dest_id: int, rx_power_mw: float
    ) -> None:
        """A frame was successfully decoded; dispatch it."""
        if dest_id != BROADCAST_ID and dest_id != self.node_id:
            self.counters.add("phy.rx_overheard")
            return
        self.counters.add(f"rx.{packet.kind.value}.packets")
        self.counters.add(f"rx.{packet.kind.value}.bytes", packet.size_bytes)
        if packet.kind == PacketKind.ACK:
            if packet.payload.acked_sender == self.node_id:
                self.mac.on_ack(packet.payload.acked_uid)
            return
        if dest_id == self.node_id:
            self.mac.handle_received_data(packet, sender_id, dest_id)
        handler = self._handlers.get(packet.kind)
        if handler is not None:
            handler(packet, sender_id, rx_power_mw)
        else:
            self.counters.add("rx.unhandled")

    def distance_to(self, other: "Node") -> float:
        return self.position.distance_to(other.position)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id} @({self.position.x:.0f},{self.position.y:.0f})>"
