"""Packet model.

A :class:`Packet` is the unit handed to the MAC layer.  Protocol-specific
contents live in ``payload`` (a small dataclass defined by the owning
protocol); the fields here are what the PHY/MAC and the statistics
pipeline need: size, kind, originator, and creation time.

Packet kinds also drive the overhead accounting for Table 1: probe bytes
are everything with kind ``PROBE``/``PROBE_PAIR_*``, data bytes are kind
``DATA``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional


class PacketKind(Enum):
    """Classes of traffic, used for dispatch and byte accounting."""

    DATA = "data"
    PROBE = "probe"  # single broadcast probe (ETX / METX / SPP)
    PROBE_PAIR_SMALL = "probe_pair_small"  # packet-pair probes (PP / ETT)
    PROBE_PAIR_LARGE = "probe_pair_large"
    JOIN_QUERY = "join_query"
    JOIN_REPLY = "join_reply"
    MAODV_RREQ = "maodv_rreq"
    MAODV_RREP = "maodv_rrep"
    MAODV_GRPH = "maodv_grph"  # group hello
    PING = "ping"
    ACK = "ack"

    @property
    def is_probe(self) -> bool:
        return self in (
            PacketKind.PROBE,
            PacketKind.PROBE_PAIR_SMALL,
            PacketKind.PROBE_PAIR_LARGE,
        )

    @property
    def is_control(self) -> bool:
        return self in (
            PacketKind.JOIN_QUERY,
            PacketKind.JOIN_REPLY,
            PacketKind.MAODV_RREQ,
            PacketKind.MAODV_RREP,
            PacketKind.MAODV_GRPH,
        )


_packet_uids = itertools.count(1)


@dataclass
class Packet:
    """One network-layer packet.

    ``origin`` is the node that *created* the packet; the transmitting
    node of any given hop is carried by the MAC delivery callback, not the
    packet, since a packet is re-broadcast unchanged by forwarders.
    """

    kind: PacketKind
    origin: int
    size_bytes: int
    created_at: float
    payload: Any = None
    uid: int = field(default_factory=lambda: next(_packet_uids))

    def copy_for_forwarding(self, payload: Optional[Any] = None) -> "Packet":
        """A forwarding copy sharing uid/origin/creation time.

        ODMRP forwards JOIN QUERY packets with updated cost fields; the
        uid is preserved so duplicate detection keys on the original
        flood, not on each hop's copy.
        """
        return Packet(
            kind=self.kind,
            origin=self.origin,
            size_bytes=self.size_bytes,
            created_at=self.created_at,
            payload=self.payload if payload is None else payload,
            uid=self.uid,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.uid} {self.kind.value} origin={self.origin} "
            f"{self.size_bytes}B t={self.created_at:.3f}>"
        )
