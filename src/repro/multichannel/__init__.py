"""Multi-radio / multi-channel extension (the paper's future work).

Section 6: "We also plan to extend the high-throughput link-quality
metrics studied in this paper for multicast routing in multi-radio /
multi-channel mesh networks."  This package builds that extension at the
path-selection level:

* :mod:`repro.multichannel.assignment` -- radio-to-channel assignment
  strategies over a mesh topology (single-channel, alternating, and an
  interference-minimizing graph-coloring assignment).
* :mod:`repro.multichannel.wcett` -- WCETT (Draves et al., MobiCom 2004)
  and its multicast adaptation MC-WCETT: forward-only ETTs (no reverse
  direction, as in Section 2.1) plus the channel-diversity term that
  penalizes paths that reuse one channel for consecutive hops.
* :mod:`repro.multichannel.study` -- a path-selection study: enumerate
  candidate paths in sampled multi-channel meshes and measure how often
  the channel-aware metric finds a path with a lower bottleneck-channel
  airtime than plain ETT.
"""

from repro.multichannel.assignment import (
    ChannelAssignment,
    alternating_assignment,
    coloring_assignment,
    single_channel_assignment,
)
from repro.multichannel.wcett import HopEtt, mc_wcett, path_ett_sum, wcett
from repro.multichannel.study import (
    MultichannelStudyResult,
    run_path_selection_study,
)

__all__ = [
    "ChannelAssignment",
    "single_channel_assignment",
    "alternating_assignment",
    "coloring_assignment",
    "HopEtt",
    "wcett",
    "mc_wcett",
    "path_ett_sum",
    "MultichannelStudyResult",
    "run_path_selection_study",
]
