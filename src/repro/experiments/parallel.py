"""Parallel experiment execution with an on-disk result cache.

The paper's sweeps (6 protocol variants x 10 topology seeds, Section 4)
are embarrassingly parallel: every run is fully determined by its
``(protocol, config, seed)`` triple and shares no state with any other
run.  This module fans such run specs out across a
:class:`concurrent.futures.ProcessPoolExecutor` -- the scenario is built
*inside* the worker so only the small, picklable spec crosses the process
boundary -- and collects results in submission order, so a parallel sweep
returns the exact list the serial loop would.

Determinism is inherited, not re-engineered: every RNG stream in a run is
derived from the spec's seeds (see :mod:`repro.sim.rng`), so a run
produces a bit-identical :class:`RunResult` whether it executes inline,
in a pool worker, or is replayed from the cache.  ``benchmarks/
bench_perf_engine.py`` and ``scripts/bench_check.py`` assert this.

Failure containment: a worker that raises inside a run returns an
*error-annotated* result (``RunResult.error`` holds the traceback and all
measurements are zeroed) instead of killing the sweep; a worker process
that dies outright (segfault, OOM kill) is caught via the broken-pool
exception and annotated the same way.  :func:`repro.experiments.results.
aggregate_runs` skips errored runs.

Caching: results are stored one JSON file per run under ``cache_dir``,
keyed by a SHA-256 over the canonicalized ``(protocol, config fields,
seed)`` triple plus a schema version.  Editing a config field therefore
only invalidates the runs whose behaviour it changes.  The key does NOT
hash the simulator source: after changing model *code*, clear the cache
(delete the directory or pass ``use_cache=False`` / ``--no-cache``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - cycle guard (resilience -> here)
    from repro.experiments.resilience import FailureKind

from repro.experiments.results import RunResult
from repro.experiments.scenarios import SimulationScenarioConfig
from repro.telemetry.manifest import canonicalize

#: Bump when the RunResult schema or run semantics change, so stale cache
#: entries from older code versions can never be returned.
#: v2: configs gained a ``telemetry`` section and results a
#: ``telemetry_path`` field.
#: v3: protocol names resolve through the protocol registry (router x
#: metric specs; MAODV/WCETT entries joined the namespace) and probing
#: configs gained WCETT pair sizes.
#: v4: scenario configs gained `faults` (declarative outage/flapping
#: plans) and `validation` (invariant monitors) sections.
#: v5: network configs gained `phy_backend` (vectorized PHY reception).
#: v6: scenario configs gained `mobility`, `obstacles`, and `energy`
#: sections (dynamic networks).
#: v7: faulty runs record `faults.*` severity counters in results, and
#: plans that silence a source for the whole traffic interval are
#: rejected instead of reporting zero delivery.
CACHE_SCHEMA_VERSION = 7

#: Default on-disk cache location (override with $REPRO_CACHE_DIR).
DEFAULT_CACHE_DIR = os.path.join(".repro_cache", "runs")

ProgressCallback = Callable[[str, int], None]


@dataclass
class RunSpec:
    """Everything a worker needs to reproduce one run, picklable."""

    protocol: str
    config: SimulationScenarioConfig
    seed: int

    def seeded_config(self) -> SimulationScenarioConfig:
        return dataclasses.replace(self.config, topology_seed=self.seed)

    def cache_key(self) -> str:
        """Content hash over (protocol, config fields, seed)."""
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "protocol": self.protocol.lower(),
            "seed": self.seed,
            "config": canonicalize(self.seeded_config()),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class RunOutcome:
    """One executed (or cached, or failed) run with its bookkeeping."""

    spec: RunSpec
    result: RunResult
    elapsed_s: float
    from_cache: bool
    #: How many times the run was dispatched (>1 only under the
    #: resilient executor's retry policy).
    attempts: int = 1
    #: Taxonomy classification when the run was quarantined by the
    #: resilient executor; None for successes and plain-executor runs.
    failure_kind: Optional["FailureKind"] = None
    #: True when the result was replayed from the sweep journal by a
    #: ``--resume`` pass instead of being executed or cache-loaded.
    from_journal: bool = False

    @property
    def failed(self) -> bool:
        return self.result.error is not None


def _error_result(spec: RunSpec, error: str) -> RunResult:
    """A zeroed, error-annotated placeholder for a crashed run."""
    return RunResult(
        protocol=spec.protocol.lower(),
        topology_seed=spec.seed,
        duration_s=spec.config.duration_s,
        offered_packets=0,
        expected_deliveries=0,
        delivered_packets=0,
        delivered_bytes=0,
        mean_delay_s=None,
        probe_bytes=0.0,
        counters={},
        error=error,
    )


def _execute_spec(spec: RunSpec) -> tuple:
    """Worker entry point: build, run, and measure one scenario.

    Runs inside the pool process (or inline for ``jobs=1``).  Exceptions
    are converted to error-annotated results here so a bad run reports
    itself instead of poisoning the whole sweep.  Returns
    ``(result, elapsed_s)``.
    """
    # Imported here so the worker does the heavy imports, not the parent.
    from repro.experiments.runner import run_protocol

    start = time.perf_counter()
    try:
        result = run_protocol(spec.protocol, spec.seeded_config())
    except Exception:  # noqa: BLE001 - annotate *any* model failure
        return _error_result(spec, traceback.format_exc()), (
            time.perf_counter() - start
        )
    return result, time.perf_counter() - start


# ----------------------------------------------------------------------
# Cache plumbing


def resolve_cache_dir(cache_dir: Optional[str] = None) -> str:
    return cache_dir or os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


def _cache_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, f"{key}.json")


def cache_shard_dir(cache_dir: str, key: str) -> str:
    """The shard directory for one cache key: ``<cache_dir>/<key[:2]>``.

    The ``dir://`` backend keeps its shared result cache sharded by the
    first two hex digits of the content hash (256-way fan-out), so a
    fleet-sized sweep never piles tens of thousands of entries into one
    directory on a network filesystem.  Each shard is an ordinary cache
    directory: :func:`cache_load` / :func:`cache_store` (and their
    atomicity and self-healing behavior) apply unchanged.
    """
    return os.path.join(cache_dir, key[:2])


def _quarantine_cache_entry(path: str) -> None:
    """Move a damaged cache file aside (``<path>.corrupt``) or drop it.

    Either way the bad artifact can never be loaded again, and the slot
    is free for the recomputed result to be stored.
    """
    try:
        os.replace(path, f"{path}.corrupt")
    except OSError:
        try:
            os.unlink(path)
        except OSError:
            pass


def cache_load(cache_dir: str, spec: RunSpec) -> Optional[RunResult]:
    """Load a cached result, or None on a miss.

    A corrupted or truncated entry (invalid JSON -- the signature of a
    worker killed mid-write by pre-atomic-store versions -- or a record
    that no longer matches the RunResult schema) is treated as a miss
    *and quarantined*: the file is renamed to ``<key>.json.corrupt`` so
    it can be inspected but never re-read, and the run recomputes.
    """
    path = _cache_path(cache_dir, spec.cache_key())
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError:
        return None  # plain miss: no entry
    except ValueError:
        _quarantine_cache_entry(path)
        return None
    if not isinstance(data, dict):
        _quarantine_cache_entry(path)
        return None
    try:
        return RunResult(**data)
    except TypeError:
        _quarantine_cache_entry(path)
        return None


def cache_store(cache_dir: str, spec: RunSpec, result: RunResult) -> None:
    """Atomically persist one result (errored runs are never cached).

    The entry is written to a temp file, flushed and fsync'd, then
    ``os.replace``d into place -- a worker killed at any instant leaves
    either the old entry, the new entry, or an orphaned temp file
    (never a half-written entry).  Orphaned temps are swept by
    :func:`sweep_stale_cache_tmps` at the next resilient sweep start.
    """
    if result.error is not None:
        return
    os.makedirs(cache_dir, exist_ok=True)
    path = _cache_path(cache_dir, spec.cache_key())
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(dataclasses.asdict(result), handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def sweep_stale_cache_tmps(cache_dir: str) -> int:
    """Remove orphaned ``*.json.tmp.<pid>`` files; returns the count.

    Temp files are transient by construction (created, fsync'd, and
    replaced within one ``cache_store`` call), so anything still on
    disk belongs to a killed worker.  Callers should only invoke this
    at sweep start, when no workers are writing to ``cache_dir``.
    """
    try:
        names = os.listdir(cache_dir)
    except OSError:
        return 0
    removed = 0
    for name in names:
        if ".json.tmp." not in name:
            continue
        try:
            os.unlink(os.path.join(cache_dir, name))
            removed += 1
        except OSError:
            pass
    return removed


# ----------------------------------------------------------------------
# Sweep execution


def execute_runs_detailed(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = 1,
    use_cache: bool = False,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[RunOutcome]:
    """Execute run specs, possibly in parallel, returning ordered outcomes.

    ``jobs=None`` or ``jobs<=0`` means one worker per CPU; ``jobs=1``
    runs inline with no pool (and no pickling requirement on the config).
    Results come back in ``specs`` order regardless of completion order.
    """
    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    directory = resolve_cache_dir(cache_dir)

    outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
    misses: List[int] = []
    for index, spec in enumerate(specs):
        cached = cache_load(directory, spec) if use_cache else None
        if cached is not None:
            outcomes[index] = RunOutcome(spec, cached, 0.0, from_cache=True)
        else:
            misses.append(index)

    if misses and jobs == 1:
        for index in misses:
            spec = specs[index]
            if progress is not None:
                progress(spec.protocol, spec.seed)
            result, elapsed = _execute_spec(spec)
            outcomes[index] = RunOutcome(spec, result, elapsed, False)
            if use_cache:
                cache_store(directory, spec, result)
    elif misses:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(misses)))
        try:
            futures = {
                index: pool.submit(_execute_spec, specs[index])
                for index in misses
            }
            for index, future in futures.items():
                spec = specs[index]
                try:
                    result, elapsed = future.result()
                except Exception:  # noqa: BLE001 - worker process died
                    result, elapsed = _error_result(
                        spec, traceback.format_exc()
                    ), 0.0
                if progress is not None:
                    progress(spec.protocol, spec.seed)
                outcomes[index] = RunOutcome(spec, result, elapsed, False)
                if use_cache:
                    cache_store(directory, spec, result)
        except BaseException:
            # KeyboardInterrupt (or anything else escaping the collection
            # loop) must not orphan workers: cancel what never started and
            # put down what did, then re-raise.
            _abort_pool(pool)
            raise
        else:
            pool.shutdown(wait=True)

    return [outcome for outcome in outcomes if outcome is not None]


def _abort_pool(pool: ProcessPoolExecutor) -> None:
    """Emergency pool teardown: cancel pending futures, kill workers.

    ``shutdown(cancel_futures=True)`` only prevents queued work from
    starting; in-flight runs would otherwise keep simulating for
    minutes after a Ctrl-C, so live worker processes are terminated
    outright (runs are deterministic and restartable, so nothing of
    value is lost).
    """
    pool.shutdown(wait=False, cancel_futures=True)
    processes = list((getattr(pool, "_processes", None) or {}).values())
    for proc in processes:
        if proc.is_alive():
            proc.terminate()
    for proc in processes:
        proc.join(2.0)
        if proc.is_alive():
            proc.kill()
            proc.join(2.0)


def execute_runs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = 1,
    use_cache: bool = False,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[RunResult]:
    """Like :func:`execute_runs_detailed` but returns bare results."""
    return [
        outcome.result
        for outcome in execute_runs_detailed(
            specs, jobs=jobs, use_cache=use_cache,
            cache_dir=cache_dir, progress=progress,
        )
    ]


def sweep_specs(
    config: SimulationScenarioConfig,
    protocols: Sequence[str],
    topology_seeds: Sequence[int],
) -> List[RunSpec]:
    """The paper's sweep grid in canonical (seed-major) order."""
    return [
        RunSpec(protocol=protocol, config=config, seed=seed)
        for seed in topology_seeds
        for protocol in protocols
    ]


# ----------------------------------------------------------------------
# Consistency gate (used by scripts/bench_check.py and the perfsmoke test)


def verify_parallel_consistency(
    config: Optional[SimulationScenarioConfig] = None,
    protocols: Sequence[str] = ("odmrp", "spp"),
    topology_seeds: Sequence[int] = (1,),
    jobs: int = 2,
    cache_dir: Optional[str] = None,
) -> List[str]:
    """Run a sweep serially and in a pool; describe any divergence.

    Returns an empty list when every (protocol, seed) pair produced an
    identical :class:`RunResult` both ways -- the property the parallel
    subsystem exists to preserve.  When ``cache_dir`` is given, a third
    pass replays the sweep from the warm cache and is held to the same
    standard.
    """
    if config is None:
        config = SimulationScenarioConfig(
            num_nodes=10,
            area_width_m=500.0,
            area_height_m=500.0,
            num_groups=1,
            members_per_group=3,
            duration_s=15.0,
            warmup_s=5.0,
        )
    specs = sweep_specs(config, protocols, topology_seeds)
    serial = execute_runs(specs, jobs=1, use_cache=False)
    pooled = execute_runs(specs, jobs=jobs, use_cache=cache_dir is not None,
                          cache_dir=cache_dir)
    passes: Dict[str, List[RunResult]] = {f"jobs={jobs}": pooled}
    if cache_dir is not None:
        passes["warm-cache"] = execute_runs(
            specs, jobs=1, use_cache=True, cache_dir=cache_dir
        )

    divergences: List[str] = []
    for label, results in passes.items():
        for spec, baseline, candidate in zip(specs, serial, results):
            where = f"{spec.protocol}/seed={spec.seed} [{label}]"
            if candidate.error is not None:
                divergences.append(f"{where}: run failed: {candidate.error}")
            elif baseline != candidate:
                divergences.append(
                    f"{where}: diverged from serial "
                    f"(serial delivered={baseline.delivered_packets}, "
                    f"got delivered={candidate.delivered_packets})"
                )
    return divergences
