"""Path-cost composition helpers.

These free functions mirror the three composition shapes of Section 2:
additive (ETX, ETT, PP), multiplicative (SPP), and the METX recursion.
They exist alongside ``RouteMetric.combine`` so analyses and tests can
compute whole-path costs directly from per-link quantities -- exactly the
arithmetic of Figures 1 and 3.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.metrics import INFINITE_COST, RouteMetric


def additive(link_costs: Sequence[float]) -> float:
    """Sum of the link costs (unicast-style composition)."""
    return math.fsum(link_costs)


def multiplicative(link_values: Sequence[float]) -> float:
    """Product of the link values (SPP composition)."""
    result = 1.0
    for value in link_values:
        result *= value
    return result


def recursive_metx(delivery_ratios: Sequence[float]) -> float:
    """METX over a path given per-link forward delivery ratios.

    Implements Equation (2): ``sum_i 1 / prod_{j>=i} df_j`` via the
    hop-by-hop recursion ``C' = (C + 1) / df``.
    """
    cost = 0.0
    for df in delivery_ratios:
        if df <= 0.0:
            return INFINITE_COST
        cost = (cost + 1.0) / df
    return cost


def metx_closed_form(delivery_ratios: Sequence[float]) -> float:
    """Equation (2) evaluated literally (cross-check for the recursion)."""
    n = len(delivery_ratios)
    total = 0.0
    for i in range(n):
        suffix_product = 1.0
        for j in range(i, n):
            df = delivery_ratios[j]
            if df <= 0.0:
                return INFINITE_COST
            suffix_product *= df
        total += 1.0 / suffix_product
    return total


def path_cost(metric: RouteMetric, link_costs: Sequence[float]) -> float:
    """Fold per-link costs through ``metric.combine`` from the source out."""
    cost = metric.initial_cost()
    for link_cost in link_costs:
        cost = metric.combine(cost, link_cost)
    return cost


def compose(metric: RouteMetric, link_costs: Sequence[float]) -> float:
    """Whole-path cost from per-link costs via the metric's declared algebra.

    Unlike :func:`path_cost` this never calls ``metric.combine``: it
    dispatches on :attr:`RouteMetric.composition` to the independent
    helpers above.  The metric-accumulation invariant monitor and the
    property tests use it as the reference a ``combine`` chain must match.
    """
    if metric.composition == "multiplicative":
        return multiplicative(link_costs)
    if metric.composition == "recursive":
        return recursive_metx(link_costs)
    return additive(link_costs)
