"""ODMRP (On-Demand Multicast Routing Protocol) and its metric-enhanced form.

:class:`~repro.odmrp.protocol.OdmrpRouter` implements both variants from
the paper's Section 3:

* **Original ODMRP** (``metric=None``): sources flood periodic JOIN
  QUERY packets; each node forwards the *first* copy it sees, members
  reply immediately, and forwarding-group state follows the JOIN REPLY
  chain back to the source.  The path that wins is whichever query
  arrived first -- usually the shortest-hop path of long, lossy links.
* **Metric-enhanced ODMRP** (``metric=<RouteMetric>``): JOIN QUERY
  packets accumulate a path cost from each hop's NEIGHBOR_TABLE; members
  wait ``delta`` to collect duplicate queries and reply along the best
  one; intermediate nodes re-forward cost-improving duplicates for
  ``alpha`` (< delta) after their first reception.
"""

from repro.odmrp.config import OdmrpConfig
from repro.odmrp.messages import (
    DataPayload,
    JoinQueryPayload,
    JoinReplyEntry,
    JoinReplyPayload,
)
from repro.odmrp.protocol import OdmrpRouter

__all__ = [
    "OdmrpConfig",
    "OdmrpRouter",
    "JoinQueryPayload",
    "JoinReplyPayload",
    "JoinReplyEntry",
    "DataPayload",
]
