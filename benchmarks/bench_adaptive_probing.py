"""Benchmark (extension): adaptive probing rate vs fixed rates.

The paper leaves "the optimal probing rate" to future work after showing
fixed rates trade freshness against interference (Section 4.2.2).  This
bench runs ODMRP_SPP with the congestion-responsive adaptive prober
against fixed 1x and 5x rates on the same topologies.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.tables import render_table
from repro.experiments.runner import run_protocol
from repro.probing.manager import ProbingConfig
from benchmarks.conftest import simulation_config, topology_seeds

VARIANTS = (
    ("fixed 1x", ProbingConfig(rate_multiplier=1.0)),
    ("fixed 5x", ProbingConfig(rate_multiplier=5.0)),
    ("adaptive", ProbingConfig(adaptive=True)),
)


def run_sweep():
    base = simulation_config()
    results = {}
    for label, probing in VARIANTS:
        delivered = 0
        probe_bytes = 0.0
        for seed in topology_seeds():
            config = replace(base, probing=probing, topology_seed=seed)
            result = run_protocol("spp", config)
            delivered += result.delivered_packets
            probe_bytes += result.probe_bytes
        results[label] = (delivered, probe_bytes)
    return results


def bench_adaptive_probing(benchmark):
    results = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    baseline = results["fixed 1x"]
    rows = [
        (
            label,
            str(delivered),
            f"{delivered / baseline[0]:.3f}",
            f"{probe_bytes / 1000:.0f}",
        )
        for label, (delivered, probe_bytes) in results.items()
    ]
    print()
    print(render_table(
        ("probing", "delivered", "vs fixed 1x", "probe kB"),
        rows,
        title="Adaptive probing rate under ODMRP_SPP (future-work extension)",
    ))
    benchmark.extra_info["results"] = {
        label: {"delivered": d, "probe_bytes": b}
        for label, (d, b) in results.items()
    }
    # The controller must be competitive with the paper's fixed rate...
    assert results["adaptive"][0] >= 0.9 * baseline[0]
    # ...and clearly better than the wasteful 5x flood OR cheaper in bytes.
    adaptive_delivered = results["adaptive"][0]
    assert (
        adaptive_delivered >= results["fixed 5x"][0] * 0.95
        or results["adaptive"][1] < results["fixed 5x"][1]
    )
