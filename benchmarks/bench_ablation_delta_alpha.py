"""Benchmark E12 (ablation): the delta / alpha window sizes.

Section 3.1 introduces delta (member wait) and alpha (duplicate-forward
window); Section 4.1 notes that much larger values than the defaults
(30 ms / 20 ms) yielded an extra 3-4% throughput in their simulations,
at the cost of query overhead.  This ablation sweeps three (delta,
alpha) pairs for ODMRP_SPP.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.tables import render_table
from repro.experiments.runner import run_protocol
from repro.odmrp.config import OdmrpConfig
from benchmarks.conftest import simulation_config, topology_seeds

WINDOWS = (
    ("tiny", 0.008, 0.005),
    ("paper", 0.030, 0.020),
    ("large", 0.120, 0.080),
)


def run_sweep():
    config = simulation_config()
    results = {}
    for label, delta, alpha in WINDOWS:
        odmrp = OdmrpConfig(delta_s=delta, alpha_s=alpha)
        delivered = 0
        query_tx = 0.0
        for seed in topology_seeds():
            seeded = replace(config, odmrp=odmrp, topology_seed=seed)
            result = run_protocol("spp", seeded)
            delivered += result.delivered_packets
            query_tx += result.counters.get("odmrp.query_forwarded", 0.0)
        results[label] = (delivered, query_tx)
    return results


def bench_ablation_delta_alpha(benchmark):
    results = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    baseline = results["paper"][0]
    rows = [
        (
            label,
            f"{delta * 1000:.0f}/{alpha * 1000:.0f}",
            str(results[label][0]),
            f"{results[label][0] / baseline:.3f}",
            f"{results[label][1]:.0f}",
        )
        for label, delta, alpha in WINDOWS
    ]
    print()
    print(render_table(
        ("setting", "delta/alpha (ms)", "delivered", "vs paper setting",
         "queries forwarded"),
        rows,
        title=(
            "Ablation: delta/alpha windows under ODMRP_SPP "
            "(paper: larger windows gain ~3-4%, cost more queries)"
        ),
    ))
    benchmark.extra_info["results"] = {
        label: {"delivered": d, "queries": q}
        for label, (d, q) in results.items()
    }
    # Larger windows must increase path diversity (query forwards).
    assert results["large"][1] >= results["tiny"][1]
    # A tiny window (nearly no duplicate collection) must not be the
    # clear best setting.
    assert results["tiny"][0] <= max(
        results["paper"][0], results["large"][0]
    ) * 1.05
