"""Tests for propagation, fading, radio parameters, and reception."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.fading import (
    NoFading,
    RayleighFading,
    RicianFading,
    rayleigh_outage_probability,
)
from repro.phy.propagation import (
    FreeSpacePropagation,
    LogDistancePropagation,
    TwoRayGroundPropagation,
)
from repro.phy.radio import (
    RadioParams,
    calibrate_rx_threshold_dbm,
    dbm_to_mw,
    mw_to_dbm,
    thermal_noise_mw,
)
from repro.phy.reception import Reception, ReceptionModel


class TestUnitConversions:
    def test_known_values(self):
        assert dbm_to_mw(0.0) == pytest.approx(1.0)
        assert dbm_to_mw(30.0) == pytest.approx(1000.0)
        assert mw_to_dbm(1.0) == pytest.approx(0.0)

    def test_zero_power_is_minus_infinity(self):
        assert mw_to_dbm(0.0) == float("-inf")

    @given(st.floats(min_value=-120.0, max_value=40.0))
    def test_roundtrip(self, dbm):
        assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm, abs=1e-9)

    def test_thermal_noise_magnitude(self):
        # 22 MHz, 10 dB noise figure: about -90.6 dBm.
        noise_dbm = mw_to_dbm(thermal_noise_mw(22e6, 10.0))
        assert noise_dbm == pytest.approx(-90.6, abs=0.2)


class TestFreeSpace:
    def test_inverse_square_law(self):
        model = FreeSpacePropagation()
        p1 = model.rx_power_mw(100.0, 100.0)
        p2 = model.rx_power_mw(100.0, 200.0)
        assert p1 / p2 == pytest.approx(4.0)

    def test_gains_multiply(self):
        model = FreeSpacePropagation()
        base = model.rx_power_mw(1.0, 50.0)
        assert model.rx_power_mw(1.0, 50.0, tx_gain=2.0, rx_gain=3.0) == (
            pytest.approx(6.0 * base)
        )

    def test_zero_distance_returns_tx_power(self):
        model = FreeSpacePropagation()
        assert model.rx_power_mw(5.0, 0.0) == 5.0

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            FreeSpacePropagation(frequency_hz=0.0)


class TestTwoRayGround:
    def test_crossover_distance_formula(self):
        model = TwoRayGroundPropagation(
            frequency_hz=2.4e9, tx_antenna_height_m=1.5, rx_antenna_height_m=1.5
        )
        wavelength = 299_792_458.0 / 2.4e9
        expected = 4.0 * math.pi * 1.5 * 1.5 / wavelength
        assert model.crossover_distance_m == pytest.approx(expected)

    def test_free_space_below_crossover(self):
        model = TwoRayGroundPropagation()
        free = FreeSpacePropagation()
        d = model.crossover_distance_m * 0.5
        assert model.rx_power_mw(10.0, d) == pytest.approx(
            free.rx_power_mw(10.0, d)
        )

    def test_fourth_power_law_beyond_crossover(self):
        model = TwoRayGroundPropagation()
        d = model.crossover_distance_m * 1.5
        p1 = model.rx_power_mw(10.0, d)
        p2 = model.rx_power_mw(10.0, 2.0 * d)
        assert p1 / p2 == pytest.approx(16.0)

    @given(st.floats(min_value=1.0, max_value=2000.0))
    def test_power_decreases_with_distance(self, d):
        model = TwoRayGroundPropagation()
        assert model.rx_power_mw(10.0, d) >= model.rx_power_mw(10.0, d + 1.0)

    def test_invalid_heights(self):
        with pytest.raises(ValueError):
            TwoRayGroundPropagation(tx_antenna_height_m=0.0)


class TestLogDistance:
    def test_matches_free_space_at_reference(self):
        model = LogDistancePropagation(path_loss_exponent=3.5)
        free = FreeSpacePropagation()
        assert model.rx_power_mw(1.0, 1.0) == pytest.approx(
            free.rx_power_mw(1.0, 1.0)
        )

    def test_exponent_law(self):
        model = LogDistancePropagation(path_loss_exponent=3.0)
        p1 = model.rx_power_mw(1.0, 10.0)
        p2 = model.rx_power_mw(1.0, 20.0)
        assert p1 / p2 == pytest.approx(8.0)

    def test_rejects_sub_free_space_exponent(self):
        with pytest.raises(ValueError):
            LogDistancePropagation(path_loss_exponent=1.5)


class TestFading:
    def test_no_fading_is_unity(self):
        rng = random.Random(1)
        model = NoFading()
        assert all(model.sample_power_gain(rng) == 1.0 for _ in range(10))

    def test_rayleigh_mean_is_one(self):
        rng = random.Random(2)
        model = RayleighFading()
        samples = [model.sample_power_gain(rng) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(1.0, abs=0.03)

    def test_rayleigh_cdf_matches_exponential(self):
        rng = random.Random(3)
        model = RayleighFading()
        samples = [model.sample_power_gain(rng) for _ in range(20000)]
        below_one = sum(1 for s in samples if s < 1.0) / len(samples)
        assert below_one == pytest.approx(1.0 - math.exp(-1.0), abs=0.02)

    def test_rician_mean_is_one(self):
        rng = random.Random(4)
        model = RicianFading(k_factor=5.0)
        samples = [model.sample_power_gain(rng) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(1.0, abs=0.03)

    def test_rician_high_k_concentrates_near_one(self):
        rng = random.Random(5)
        strong_los = RicianFading(k_factor=50.0)
        samples = [strong_los.sample_power_gain(rng) for _ in range(5000)]
        spread = max(samples) - min(samples)
        assert spread < 2.0  # Rayleigh spread over 5000 samples is >> 2

    def test_rician_rejects_negative_k(self):
        with pytest.raises(ValueError):
            RicianFading(k_factor=-1.0)

    def test_outage_probability_against_samples(self):
        rng = random.Random(6)
        model = RayleighFading()
        mean_snr = 4.0  # signal sits at 4x the threshold on average
        threshold = 1.0
        losses = sum(
            1
            for _ in range(20000)
            if model.sample_power_gain(rng) * mean_snr < threshold
        )
        predicted = rayleigh_outage_probability(mean_snr, threshold)
        assert losses / 20000 == pytest.approx(predicted, abs=0.01)

    def test_outage_probability_edge_cases(self):
        assert rayleigh_outage_probability(0.0, 1.0) == 1.0
        assert rayleigh_outage_probability(1e12, 1.0) == pytest.approx(
            0.0, abs=1e-9
        )


class TestRadioParams:
    def test_derived_fields(self):
        params = RadioParams(tx_power_dbm=15.0)
        assert params.tx_power_mw == pytest.approx(dbm_to_mw(15.0))
        assert params.rx_threshold_mw == pytest.approx(
            dbm_to_mw(params.rx_threshold_dbm)
        )
        assert params.sinr_threshold_linear == pytest.approx(10.0)

    def test_set_rx_threshold_keeps_cs_margin(self):
        params = RadioParams()
        params.set_rx_threshold_dbm(-70.0, cs_margin_db=12.0)
        assert params.rx_threshold_dbm == -70.0
        assert params.carrier_sense_threshold_dbm == -82.0
        assert params.rx_threshold_mw == pytest.approx(dbm_to_mw(-70.0))

    def test_calibration_puts_range_at_target(self):
        propagation = TwoRayGroundPropagation()
        params = RadioParams()
        threshold = calibrate_rx_threshold_dbm(propagation, params, 250.0)
        params.set_rx_threshold_dbm(threshold)
        at_range = propagation.rx_power_mw(params.tx_power_mw, 250.0)
        beyond = propagation.rx_power_mw(params.tx_power_mw, 251.0)
        assert at_range >= params.rx_threshold_mw
        assert beyond < params.rx_threshold_mw

    def test_calibration_rejects_bad_range(self):
        with pytest.raises(ValueError):
            calibrate_rx_threshold_dbm(
                TwoRayGroundPropagation(), RadioParams(), 0.0
            )


class TestReception:
    def make_model(self) -> ReceptionModel:
        params = RadioParams()
        params.set_rx_threshold_dbm(-74.0)
        return ReceptionModel(params)

    def test_below_threshold_fails(self):
        model = self.make_model()
        weak = dbm_to_mw(-80.0)
        assert not model.decide_powers(weak, 0.0)

    def test_clear_channel_above_threshold_succeeds(self):
        model = self.make_model()
        strong = dbm_to_mw(-60.0)
        assert model.decide_powers(strong, 0.0)

    def test_equal_power_interferer_destroys_frame(self):
        model = self.make_model()
        signal = dbm_to_mw(-60.0)
        assert not model.decide_powers(signal, signal)

    def test_capture_over_weak_interferer(self):
        model = self.make_model()
        signal = dbm_to_mw(-60.0)
        interference = dbm_to_mw(-75.0)  # 15 dB down, above the 10 dB need
        assert model.decide_powers(signal, interference)

    def test_can_sense_uses_cs_threshold(self):
        model = self.make_model()
        assert model.can_sense(dbm_to_mw(-80.0))
        assert not model.can_sense(dbm_to_mw(-95.0))

    def test_reception_tracks_peak_interference(self):
        reception = Reception(object(), 1, 1.0, 0.0, 1.0)
        reception.note_interference(0.5)
        reception.note_interference(0.2)
        assert reception.peak_interference_mw == 0.5

    def test_snr_margin_sign(self):
        model = self.make_model()
        assert model.snr_db_margin(dbm_to_mw(-60.0)) > 0
        assert model.snr_db_margin(dbm_to_mw(-90.0)) < 0
        assert model.snr_db_margin(0.0) == float("-inf")
