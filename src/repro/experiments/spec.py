"""Declarative experiment specs: a sweep as serializable data.

An :class:`ExperimentSpec` captures everything
:func:`~repro.experiments.runner.compare_protocols` needs -- the
protocol list (resolved through the protocol registry), topology seeds,
parallelism/caching knobs, and the full
:class:`~repro.experiments.scenarios.SimulationScenarioConfig` -- as a
plain dataclass that round-trips losslessly through ``dict``, JSON, and
TOML.  That makes every router x metric sweep shippable as a file::

    repro run --spec examples/paper_spec.toml
    repro run --spec examples/maodv_sweep.toml --protocols maodv,maodv-spp

Serialization rules
-------------------
* Nested config dataclasses become nested tables/objects; unknown keys
  are rejected (a typo'd field fails loudly at load time, not silently
  mid-sweep).
* ``None`` fields are omitted on write (TOML has no null); absent keys
  take the dataclass default on read, so defaults never bloat spec
  files.
* Model *instances* (a custom propagation or fading object) are not
  serializable -- specs describe the declarative surface only, and
  :meth:`ExperimentSpec.to_dict` refuses exotic values instead of
  writing a lossy ``repr``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
    get_args,
    get_origin,
    get_type_hints,
)

from repro.experiments.adaptive import AdaptiveConfig
from repro.experiments.campaigns import CampaignConfig
from repro.experiments.scenarios import (
    PROTOCOL_NAMES,
    SimulationScenarioConfig,
)
from repro.protocols import ProtocolSpec, protocol_by_name

#: Bump when the on-disk spec layout changes incompatibly.
SPEC_SCHEMA_VERSION = 1


class SpecError(ValueError):
    """A spec file or dict that cannot be interpreted."""


# ----------------------------------------------------------------------
# Dataclass <-> plain-dict conversion (strict, lossless)


def _plain(value: Any, where: str) -> Any:
    """Reduce a config value to JSON/TOML primitives, refusing the rest."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {}
        for f in dataclasses.fields(value):
            item = _plain(getattr(value, f.name), f"{where}.{f.name}")
            if item is not None:
                out[f.name] = item
        return out
    if isinstance(value, Mapping):
        return {str(k): _plain(v, f"{where}[{k!r}]") for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item, f"{where}[]") for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise SpecError(
        f"{where} = {value!r} is not serializable; experiment specs may "
        "only contain primitives and config dataclasses (construct model "
        "instances in code instead)"
    )


def _strip_optional(hint: Any) -> Any:
    if get_origin(hint) is Union:
        args = [a for a in get_args(hint) if a is not type(None)]
        if len(args) == 1:
            return args[0]
    return hint


def _sequence_item_dataclass(hint: Any) -> Optional[type]:
    """The dataclass a ``List[X]``/``Tuple[X, ...]`` hint holds, if any.

    Lets config fields like ``FaultPlan.outages: Tuple[OutageWindow, ...]``
    round-trip: the serialized form is a list of tables, rebuilt here
    element by element.
    """
    if get_origin(hint) not in (list, tuple):
        return None
    item_types = [a for a in get_args(hint) if a is not Ellipsis]
    if len(set(item_types)) != 1:
        return None
    item_type = _strip_optional(item_types[0])
    if isinstance(item_type, type) and dataclasses.is_dataclass(item_type):
        return item_type
    return None


def _build_dataclass(cls: type, data: Mapping[str, Any], where: str) -> Any:
    """Reconstruct a (possibly nested) config dataclass from a mapping."""
    if not isinstance(data, Mapping):
        raise SpecError(f"{where} must be a table/object, got {data!r}")
    field_types = get_type_hints(cls)
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - names
    if unknown:
        raise SpecError(
            f"unknown key(s) {sorted(unknown)} in {where}; valid keys: "
            + ", ".join(sorted(names))
        )
    kwargs: Dict[str, Any] = {}
    for f in dataclasses.fields(cls):
        if f.name not in data:
            continue
        value = data[f.name]
        target = _strip_optional(field_types[f.name])
        if dataclasses.is_dataclass(target) and isinstance(value, Mapping):
            value = _build_dataclass(target, value, f"{where}.{f.name}")
        else:
            item_type = _sequence_item_dataclass(target)
            if item_type is not None and isinstance(value, (list, tuple)):
                value = [
                    _build_dataclass(
                        item_type, item, f"{where}.{f.name}[{index}]"
                    )
                    for index, item in enumerate(value)
                ]
        kwargs[f.name] = value
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"invalid {where}: {exc}") from exc


def config_to_dict(config: SimulationScenarioConfig) -> Dict[str, Any]:
    """A scenario config as nested primitives (raises on model instances)."""
    return _plain(config, "config")


def config_from_dict(data: Mapping[str, Any]) -> SimulationScenarioConfig:
    """Rebuild a scenario config; unknown keys are an error."""
    return _build_dataclass(SimulationScenarioConfig, data, "config")


# ----------------------------------------------------------------------
# A minimal TOML emitter (tomllib is read-only).  Covers exactly the
# value shapes _plain() can produce: str/bool/int/float scalars, lists
# of scalars, nested string-keyed tables, and lists of flat tables
# (emitted as ``[[arrays.of.tables]]``; fault schedules need these).

_BARE_KEY = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-"
)


def _toml_key(key: str) -> str:
    if key and all(ch in _BARE_KEY for ch in key):
        return key
    return json.dumps(key)


def _toml_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, str)):
        return json.dumps(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise SpecError(f"non-finite float {value!r} in spec")
        text = repr(value)
        # TOML requires a decimal point or exponent on floats.
        return text if any(c in text for c in ".eE") else text + ".0"
    if isinstance(value, list):
        return "[" + ", ".join(_toml_value(item) for item in value) + "]"
    raise SpecError(f"cannot render {value!r} as TOML")


def toml_dumps(data: Mapping[str, Any]) -> str:
    """Serialize a nested dict of primitives to TOML text."""

    def is_table_array(value: Any) -> bool:
        return (
            isinstance(value, list)
            and bool(value)
            and all(isinstance(item, Mapping) for item in value)
        )

    def emit(table: Mapping[str, Any], prefix: str, lines: List[str]) -> None:
        scalars: Dict[str, Any] = {}
        subtables: Dict[str, Any] = {}
        table_arrays: Dict[str, Any] = {}
        for k, v in table.items():
            if isinstance(v, Mapping):
                subtables[k] = v
            elif is_table_array(v):
                table_arrays[k] = v
            else:
                scalars[k] = v
        if prefix and (scalars or not (subtables or table_arrays)):
            lines.append(f"[{prefix}]")
        for key, value in scalars.items():
            lines.append(f"{_toml_key(key)} = {_toml_value(value)}")
        if scalars or not prefix:
            lines.append("")
        for key, value in subtables.items():
            path = f"{prefix}.{_toml_key(key)}" if prefix else _toml_key(key)
            emit(value, path, lines)
        for key, items in table_arrays.items():
            path = f"{prefix}.{_toml_key(key)}" if prefix else _toml_key(key)
            for item in items:
                lines.append(f"[[{path}]]")
                for item_key, item_value in item.items():
                    if isinstance(item_value, Mapping) or is_table_array(
                        item_value
                    ):
                        raise SpecError(
                            f"nested tables inside the table array {path!r} "
                            "are not supported by the TOML emitter; write "
                            "the spec as JSON instead"
                        )
                    lines.append(
                        f"{_toml_key(item_key)} = {_toml_value(item_value)}"
                    )
                lines.append("")

    lines: List[str] = []
    emit(data, "", lines)
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The spec itself


@dataclass
class ExperimentSpec:
    """One declarative sweep: protocols x seeds over one scenario config."""

    name: str = "experiment"
    description: str = ""
    protocols: Tuple[str, ...] = PROTOCOL_NAMES
    seeds: Tuple[int, ...] = (1,)
    jobs: int = 1
    use_cache: bool = False
    #: Per-run wall-clock timeout (seconds).  Setting this -- or
    #: ``max_retries`` -- executes the sweep under the resilient
    #: supervisor (:mod:`repro.experiments.resilience`): one worker
    #: process per run, timeout enforcement, retry with backoff, and a
    #: durable journal that ``repro run --resume`` replays.  ``None``
    #: (the default) keeps the plain executor.
    run_timeout_s: Optional[float] = None
    #: Retry budget for transient failures (timeouts, worker crashes,
    #: OOM kills).  ``None`` = plain executor unless another resilience
    #: knob is set, in which case the default policy (2 retries) applies.
    max_retries: Optional[int] = None
    #: Optional mobility axis: run the whole protocols x seeds grid once
    #: per listed model (``config.mobility.model`` replaced per cell) and
    #: label results ``protocol@model``.  Empty = no axis, the spec's
    #: ``config.mobility`` applies as-is.
    mobility_models: Tuple[str, ...] = ()
    #: Sweep execution backend URI: ``"local-pool"`` (default, this
    #: process's pool) or ``"dir://<shared-dir>"`` (the distributed
    #: lease-queue backend; see :mod:`repro.experiments.distributed`).
    backend: str = "local-pool"
    #: Optional ``[adaptive]`` section: run the sweep under the
    #: sequential planner (:mod:`repro.experiments.adaptive`) -- seeds
    #: in batches, CI-driven stopping per protocol, paired
    #: common-random-number comparisons.  ``None`` keeps the exhaustive
    #: grid; ``repro run --adaptive`` fills in the defaults.
    adaptive: Optional[AdaptiveConfig] = None
    #: Optional ``[campaign]`` section: sample the fault-plan space
    #: under an importance proposal biased toward severe schedules
    #: (:mod:`repro.experiments.campaigns`), run every draw against
    #: every protocol with a fault-free CRN baseline, and recover
    #: nominal-world tail estimates from the weighted runs.  ``None``
    #: keeps the ordinary sweep; ``repro run --campaign`` fills in the
    #: defaults.
    campaign: Optional[CampaignConfig] = None
    config: SimulationScenarioConfig = field(
        default_factory=SimulationScenarioConfig
    )

    def __post_init__(self) -> None:
        self.protocols = tuple(self.protocols)
        self.seeds = tuple(self.seeds)
        self.mobility_models = tuple(self.mobility_models)

    # -- validation ----------------------------------------------------

    def resolve_protocols(self) -> Tuple[ProtocolSpec, ...]:
        """Resolve every protocol name through the registry (typo-safe)."""
        return tuple(protocol_by_name(name) for name in self.protocols)

    def validate(self) -> "ExperimentSpec":
        """Check the spec is runnable; returns self for chaining."""
        if not self.protocols:
            raise SpecError("spec lists no protocols")
        if not self.seeds:
            raise SpecError("spec lists no topology seeds")
        if any(not isinstance(seed, int) or isinstance(seed, bool)
               for seed in self.seeds):
            raise SpecError(f"seeds must be integers, got {self.seeds!r}")
        if self.run_timeout_s is not None and self.run_timeout_s <= 0:
            raise SpecError(
                f"run_timeout_s must be positive, got {self.run_timeout_s!r}"
            )
        if self.max_retries is not None and (
            not isinstance(self.max_retries, int)
            or isinstance(self.max_retries, bool)
            or self.max_retries < 0
        ):
            raise SpecError(
                f"max_retries must be a non-negative integer, "
                f"got {self.max_retries!r}"
            )
        from repro.experiments.executors import BackendError, parse_backend

        try:
            parse_backend(self.backend)
        except BackendError as exc:
            raise SpecError(str(exc)) from exc
        self.resolve_protocols()
        if self.adaptive is not None:
            try:
                self.adaptive.validate()
            except ValueError as exc:
                raise SpecError(str(exc)) from exc
            if self.mobility_models:
                raise SpecError(
                    "adaptive sweeps do not combine with a "
                    "mobility_models axis; run one model per spec"
                )
            baseline = self.adaptive.baseline
            if baseline is not None and baseline not in self.protocols:
                raise SpecError(
                    f"adaptive.baseline {baseline!r} is not among the "
                    f"spec's protocols {list(self.protocols)}"
                )
        if self.campaign is not None:
            try:
                self.campaign.validate()
            except ValueError as exc:
                raise SpecError(str(exc)) from exc
            if self.adaptive is not None:
                raise SpecError(
                    "campaign and adaptive sections do not combine; "
                    "pick one planner per spec"
                )
            if self.mobility_models:
                raise SpecError(
                    "fault campaigns do not combine with a "
                    "mobility_models axis; run one model per spec"
                )
            if not self.config.faults.is_empty():
                raise SpecError(
                    "campaign specs must leave config.faults empty -- "
                    "the campaign samples the fault plans itself"
                )
            baseline = self.campaign.baseline
            if baseline is not None and baseline not in self.protocols:
                raise SpecError(
                    f"campaign.baseline {baseline!r} is not among the "
                    f"spec's protocols {list(self.protocols)}"
                )
        from repro.mobility.models import mobility_model_by_name

        for model in self.mobility_models:
            try:
                mobility_model_by_name(model)
            except ValueError as exc:
                raise SpecError(str(exc)) from exc
        return self

    @property
    def total_runs(self) -> int:
        cells = max(1, len(self.mobility_models))
        if self.campaign is not None:
            # Fault-free CRN baseline plus one faulted grid per draw.
            cells *= 1 + self.campaign.draws
        return len(self.protocols) * len(self.seeds) * cells

    def describe(self) -> str:
        """Human-readable run plan (the CLI's ``--dry-run`` output)."""
        lines = [
            f"experiment: {self.name}",
        ]
        if self.description:
            lines.append(f"  {self.description}")
        mobility_axis = (
            f" x {len(self.mobility_models)} mobility models"
            if self.mobility_models else ""
        )
        if self.campaign is not None:
            mobility_axis += (
                f" x (1 baseline + {self.campaign.draws} fault draws)"
            )
        lines += [
            f"runs: {len(self.protocols)} protocols x "
            f"{len(self.seeds)} topologies{mobility_axis} = {self.total_runs}",
            f"seeds: {', '.join(str(seed) for seed in self.seeds)}",
            *(
                [f"mobility: {', '.join(self.mobility_models)} "
                 f"(interval {self.config.mobility.update_interval_s:g} s)"]
                if self.mobility_models else []
            ),
            f"scenario: {self.config.num_nodes} nodes, "
            f"{self.config.duration_s:g} s simulated, "
            f"{self.config.num_groups} group(s) x "
            f"{self.config.members_per_group} members",
            f"execution: jobs={self.jobs} "
            f"cache={'on' if self.use_cache else 'off'} "
            f"telemetry={'on' if self.config.telemetry.enabled else 'off'}"
            + (
                f" backend={self.backend}"
                if self.backend != "local-pool" else ""
            ),
        ]
        if self.adaptive is not None:
            lines.append(
                f"adaptive: target-half-width="
                f"{self.adaptive.target_half_width:g} "
                f"batch={self.adaptive.batch_size} "
                f"seeds {self.adaptive.min_seeds}.."
                f"{self.adaptive.max_seeds} "
                f"paired={'on' if self.adaptive.paired else 'off'}"
                + (
                    f" baseline={self.adaptive.baseline}"
                    if self.adaptive.baseline else ""
                )
            )
        if self.campaign is not None:
            proposal = (
                f"{self.campaign.proposal_shape:g}"
                if self.campaign.importance else "nominal"
            )
            generators = ", ".join(
                g.kind for g in self.campaign.resolved_generators()
            )
            lines.append(
                f"campaign: {self.campaign.draws} fault draws "
                f"(nominal-shape={self.campaign.nominal_shape:g} "
                f"proposal-shape={proposal} "
                f"tail<{self.campaign.tail_fraction:g}) "
                f"generators: {generators}"
                + (
                    f" baseline={self.campaign.baseline}"
                    if self.campaign.baseline else ""
                )
            )
        if self.run_timeout_s is not None or self.max_retries is not None:
            timeout = (
                f"{self.run_timeout_s:g}s" if self.run_timeout_s is not None
                else "none"
            )
            retries = (
                self.max_retries if self.max_retries is not None
                else "default"
            )
            lines.append(
                f"resilience: run-timeout={timeout} max-retries={retries} "
                "(supervised workers, journaled)"
            )
        lines.append("protocols:")
        for proto in self.resolve_protocols():
            metric = proto.metric or "min-hop"
            lines.append(
                f"  {proto.name:<12} family={proto.family:<13} "
                f"metric={metric:<8} router={proto.router.__name__}"
            )
        return "\n".join(lines)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "schema": SPEC_SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "protocols": list(self.protocols),
            "seeds": list(self.seeds),
            "jobs": self.jobs,
            "use_cache": self.use_cache,
        }
        # None means "knob not set": omitted on write (TOML has no null),
        # absent keys take the dataclass default on read.
        if self.run_timeout_s is not None:
            data["run_timeout_s"] = self.run_timeout_s
        if self.max_retries is not None:
            data["max_retries"] = self.max_retries
        if self.mobility_models:
            data["mobility_models"] = list(self.mobility_models)
        if self.backend != "local-pool":
            data["backend"] = self.backend
        if self.adaptive is not None:
            data["adaptive"] = _plain(self.adaptive, "adaptive")
        if self.campaign is not None:
            data["campaign"] = _plain(self.campaign, "campaign")
        data["config"] = config_to_dict(self.config)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        if not isinstance(data, Mapping):
            raise SpecError(f"spec must be a table/object, got {data!r}")
        schema = data.get("schema", SPEC_SCHEMA_VERSION)
        if schema != SPEC_SCHEMA_VERSION:
            raise SpecError(
                f"spec schema {schema!r} not supported "
                f"(this version reads schema {SPEC_SCHEMA_VERSION})"
            )
        known = {
            "schema", "name", "description", "protocols", "seeds",
            "jobs", "use_cache", "run_timeout_s", "max_retries",
            "mobility_models", "backend", "adaptive", "campaign", "config",
        }
        unknown = set(data) - known
        if unknown:
            raise SpecError(
                f"unknown key(s) {sorted(unknown)} in spec; valid keys: "
                + ", ".join(sorted(known))
            )
        kwargs: Dict[str, Any] = {}
        for key in ("name", "description", "jobs", "use_cache",
                    "run_timeout_s", "max_retries", "backend"):
            if key in data:
                kwargs[key] = data[key]
        if "protocols" in data:
            kwargs["protocols"] = tuple(data["protocols"])
        if "seeds" in data:
            kwargs["seeds"] = tuple(data["seeds"])
        if "mobility_models" in data:
            kwargs["mobility_models"] = tuple(data["mobility_models"])
        if "adaptive" in data:
            kwargs["adaptive"] = _build_dataclass(
                AdaptiveConfig, data["adaptive"], "adaptive"
            )
        if "campaign" in data:
            kwargs["campaign"] = _build_dataclass(
                CampaignConfig, data["campaign"], "campaign"
            )
        if "config" in data:
            kwargs["config"] = config_from_dict(data["config"])
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise SpecError(f"invalid JSON spec: {exc}") from exc
        return cls.from_dict(data)

    def to_toml(self) -> str:
        return toml_dumps(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "ExperimentSpec":
        try:
            import tomllib
        except ImportError:  # Python 3.10: tomllib landed in 3.11
            try:
                import tomli as tomllib  # type: ignore[no-redef]
            except ImportError:
                raise SpecError(
                    "reading TOML specs needs Python >= 3.11 (tomllib) "
                    "or the 'tomli' package; use a .json spec instead"
                ) from None

        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError(f"invalid TOML spec: {exc}") from exc
        return cls.from_dict(data)

    # -- files ---------------------------------------------------------

    def save(self, path: str) -> str:
        """Write the spec to ``path`` (.toml or .json, by extension)."""
        text = self.to_json() if _is_json(path) else self.to_toml()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return path

    @classmethod
    def load(cls, path: str) -> "ExperimentSpec":
        """Read a spec file (.toml or .json, by extension)."""
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        return cls.from_json(text) if _is_json(path) else cls.from_toml(text)

    # -- derived specs -------------------------------------------------

    def with_overrides(
        self,
        protocols: Optional[Sequence[str]] = None,
        seeds: Optional[Sequence[int]] = None,
        jobs: Optional[int] = None,
        use_cache: Optional[bool] = None,
        run_timeout_s: Optional[float] = None,
        max_retries: Optional[int] = None,
        mobility_models: Optional[Sequence[str]] = None,
        backend: Optional[str] = None,
    ) -> "ExperimentSpec":
        """A copy with CLI-style overrides applied (None = keep)."""
        return dataclasses.replace(
            self,
            protocols=tuple(protocols) if protocols is not None
            else self.protocols,
            seeds=tuple(seeds) if seeds is not None else self.seeds,
            mobility_models=tuple(mobility_models)
            if mobility_models is not None else self.mobility_models,
            jobs=self.jobs if jobs is None else jobs,
            use_cache=self.use_cache if use_cache is None else use_cache,
            run_timeout_s=self.run_timeout_s if run_timeout_s is None
            else run_timeout_s,
            max_retries=self.max_retries if max_retries is None
            else max_retries,
            backend=self.backend if backend is None else backend,
        )


def _is_json(path: str) -> bool:
    return path.lower().endswith(".json")


def load_experiment_spec(path: str) -> ExperimentSpec:
    """Module-level convenience alias for :meth:`ExperimentSpec.load`."""
    return ExperimentSpec.load(path)
