"""Reception bookkeeping and SINR-based packet decisions.

One :class:`Reception` exists per (transmission, candidate receiver) pair.
It records the fading-sampled signal power and the worst (peak) concurrent
interference seen while the packet was in the air; at end-of-transmission
:class:`ReceptionModel` decides success.

The decision rule mirrors GloMoSim's SNR-threshold reception:

* the faded signal power must reach the receive threshold, and
* the SINR against (noise + peak concurrent interference) must reach the
  capture threshold for the whole packet duration.

Using *peak* interference over the packet is slightly conservative versus
a bit-by-bit BER model but preserves the property that matters for the
paper: any overlapping transmission of comparable power destroys a
broadcast frame, because there are no retransmissions to recover it.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.phy.radio import RadioParams


class Reception:
    """In-flight reception state at one candidate receiver."""

    __slots__ = (
        "transmission",
        "receiver_id",
        "signal_mw",
        "start_time",
        "end_time",
        "peak_interference_mw",
    )

    def __init__(
        self,
        transmission: Any,
        receiver_id: int,
        signal_mw: float,
        start_time: float,
        end_time: float,
    ) -> None:
        self.transmission = transmission
        self.receiver_id = receiver_id
        self.signal_mw = signal_mw
        self.start_time = start_time
        self.end_time = end_time
        self.peak_interference_mw = 0.0

    def note_interference(self, concurrent_other_power_mw: float) -> None:
        """Record the current total power from *other* transmissions.

        Called whenever the set of concurrent transmissions audible at the
        receiver changes; the peak over the packet decides capture.
        """
        if concurrent_other_power_mw > self.peak_interference_mw:
            self.peak_interference_mw = concurrent_other_power_mw


class ReceptionModel:
    """Applies the threshold/SINR decision rule of one radio profile."""

    def __init__(self, params: RadioParams) -> None:
        self.params = params

    def can_sense(self, power_mw: float) -> bool:
        """True if the given power trips carrier sense (medium busy)."""
        return power_mw >= self.params.carrier_sense_threshold_mw

    def decide(self, reception: Reception) -> bool:
        """Final success/failure decision at end of transmission."""
        return self.decide_powers(
            reception.signal_mw, reception.peak_interference_mw
        )

    def decide_powers(
        self, signal_mw: float, interference_mw: float, noise_mw: Optional[float] = None
    ) -> bool:
        """Decision from raw powers (exposed for analytic tests)."""
        params = self.params
        if signal_mw < params.rx_threshold_mw:
            return False
        noise = params.noise_mw if noise_mw is None else noise_mw
        sinr = signal_mw / (noise + interference_mw)
        return sinr >= params.sinr_threshold_linear

    def snr_db_margin(self, signal_mw: float) -> float:
        """How far (dB) a clear-channel signal sits above the decode floor.

        The decode floor is the stricter of the receive threshold and the
        SINR-over-noise requirement.  Positive margins decode; negative
        margins are lost.  Useful for topology diagnostics.
        """
        import math

        params = self.params
        floor_mw = max(
            params.rx_threshold_mw,
            params.noise_mw * params.sinr_threshold_linear,
        )
        if signal_mw <= 0:
            return float("-inf")
        return 10.0 * math.log10(signal_mw / floor_mw)
