"""Radio-to-channel assignment over a mesh topology.

Each node owns a small number of radios, each tuned to one orthogonal
channel.  A link exists on every channel the two endpoints share.  The
assignment determines how much intra-path ("self") interference a route
suffers: consecutive hops on the same channel cannot transmit
concurrently, halving pipeline throughput -- the effect WCETT's
channel-diversity term models.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple


@dataclass
class ChannelAssignment:
    """Which channels each node's radios are tuned to.

    ``link_channels`` optionally pins specific links to specific channels
    (the interference-aware assignment uses this to preserve its per-link
    coloring); links without a pin operate on the lowest shared channel.
    """

    num_channels: int
    radios_by_node: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    link_channels: Dict[FrozenSet[int], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_channels <= 0:
            raise ValueError("need at least one channel")
        for node, channels in self.radios_by_node.items():
            bad = [c for c in channels if not 0 <= c < self.num_channels]
            if bad:
                raise ValueError(
                    f"node {node} tuned to nonexistent channels {bad}"
                )
            if len(set(channels)) != len(channels):
                raise ValueError(
                    f"node {node} has two radios on one channel: {channels}"
                )
        for key, channel in self.link_channels.items():
            endpoints = tuple(key)
            usable = set(self.channels_of(endpoints[0]))
            if len(endpoints) > 1:
                usable &= set(self.channels_of(endpoints[1]))
            if channel not in usable:
                raise ValueError(
                    f"link {sorted(key)} pinned to channel {channel} that "
                    "its endpoints do not share"
                )

    def channels_of(self, node: int) -> Tuple[int, ...]:
        return self.radios_by_node.get(node, ())

    def shared_channels(self, node_a: int, node_b: int) -> Tuple[int, ...]:
        """Channels a link between the two nodes can use."""
        shared = set(self.channels_of(node_a)) & set(self.channels_of(node_b))
        return tuple(sorted(shared))

    def link_channel(self, node_a: int, node_b: int) -> Optional[int]:
        """The channel a link operates on: its pin, else lowest shared."""
        pinned = self.link_channels.get(frozenset((node_a, node_b)))
        if pinned is not None:
            return pinned
        shared = self.shared_channels(node_a, node_b)
        return shared[0] if shared else None


def single_channel_assignment(
    node_ids: Sequence[int], num_channels: int = 1
) -> ChannelAssignment:
    """Everyone on channel 0 -- the paper's (single-channel) setting."""
    return ChannelAssignment(
        num_channels=max(1, num_channels),
        radios_by_node={node: (0,) for node in node_ids},
    )


def alternating_assignment(
    node_ids: Sequence[int], num_channels: int = 2, radios_per_node: int = 2
) -> ChannelAssignment:
    """Each node gets ``radios_per_node`` consecutive channels, rotated
    by node id.  Guarantees every adjacent pair shares at least one
    channel when ``radios_per_node >= num_channels / 2 + 1``."""
    if radios_per_node > num_channels:
        raise ValueError("more radios than channels")
    radios = {}
    for node in node_ids:
        start = node % num_channels
        radios[node] = tuple(
            (start + i) % num_channels for i in range(radios_per_node)
        )
    return ChannelAssignment(num_channels=num_channels, radios_by_node=radios)


def coloring_assignment(
    links: Sequence[FrozenSet[int]],
    num_channels: int = 3,
    radios_per_node: int = 2,
    rng: Optional[random.Random] = None,
) -> ChannelAssignment:
    """Interference-aware assignment via conflict-graph coloring.

    Builds the link conflict graph (two links conflict when they share an
    endpoint), greedy-colors it with ``num_channels`` colors so adjacent
    links land on different channels where possible, then tunes each
    node's radios to the channels its links were assigned (capped at
    ``radios_per_node``; overflow links fall back to the node's first
    channel).

    Uses networkx's greedy coloring; ties are broken deterministically
    from ``rng``.
    """
    import networkx as nx

    if rng is None:
        rng = random.Random(0)
    conflict = nx.Graph()
    link_list: List[FrozenSet[int]] = list(links)
    conflict.add_nodes_from(range(len(link_list)))
    for i, link_a in enumerate(link_list):
        for j in range(i + 1, len(link_list)):
            if link_a & link_list[j]:
                conflict.add_edge(i, j)
    coloring = nx.coloring.greedy_color(conflict, strategy="largest_first")

    node_ids = sorted({node for link in link_list for node in link})
    channels_used: Dict[int, List[int]] = {node: [] for node in node_ids}
    link_channels: Dict[FrozenSet[int], int] = {}
    for index, link in enumerate(link_list):
        channel = coloring[index] % num_channels
        endpoints = tuple(link)
        # The link keeps its color only if both endpoints can afford a
        # radio on it; otherwise it falls back to a channel the endpoints
        # already share (keeping the mesh connected beats diversity).
        fits = all(
            channel in channels_used[node]
            or len(channels_used[node]) < radios_per_node
            for node in endpoints
        )
        if fits:
            for node in endpoints:
                if channel not in channels_used[node]:
                    channels_used[node].append(channel)
            link_channels[link] = channel
    for node in node_ids:
        if not channels_used[node]:
            channels_used[node].append(0)
    # Fallback for links whose color did not fit: use a channel the
    # endpoints already share, or tune a spare radio to the other side's
    # channel.  A link may stay unusable only when both endpoints are
    # full on disjoint channel sets (rare in practice).
    for link in link_list:
        if link in link_channels:
            continue
        node_a, node_b = tuple(link)
        used_a, used_b = channels_used[node_a], channels_used[node_b]
        shared = set(used_a) & set(used_b)
        if shared:
            link_channels[link] = min(shared)
        elif len(used_b) < radios_per_node:
            used_b.append(min(used_a))
            link_channels[link] = min(used_a)
        elif len(used_a) < radios_per_node:
            used_a.append(min(used_b))
            link_channels[link] = min(used_b)
    return ChannelAssignment(
        num_channels=num_channels,
        radios_by_node={
            node: tuple(sorted(chs)) for node, chs in channels_used.items()
        },
        link_channels=link_channels,
    )


def assignment_connectivity(
    links: Sequence[FrozenSet[int]], assignment: ChannelAssignment
) -> float:
    """Fraction of topology links that survived the assignment
    (both endpoints share a channel).  A sanity metric: aggressive
    channel diversity that disconnects the mesh is useless."""
    if not links:
        return 1.0
    usable = sum(
        1
        for link in links
        if assignment.shared_channels(*tuple(link))
    )
    return usable / len(links)
