"""The mobility driver: one observer tick from model to channel.

``MobilityDriver.step`` is registered as an observer on the scenario's
chunked ``run(until=...)`` loop (the same zero-cost-when-disabled slot
telemetry and validation use), so it fires at exact interval boundaries
of virtual time.  Each tick:

1. the model advances every traveler and reports the nodes that moved,
2. each moved node's position flows ``Node.set_position`` ->
   ``WirelessChannel.note_position_change`` (O(1) spatial-grid
   re-bucket), and
3. one ``WirelessChannel.invalidate_topology()`` call re-derives the
   audible sets, drops the memoized connectivity map, and migrates the
   vectorized backend's per-link fading state -- one re-derivation per
   tick, not per node.

Because the tick runs between events at a deterministic boundary and
draws only from the model's own ``mobility.<model>`` stream, a moving
run stays bit-identical across serial/parallel/cache/telemetry paths and
across scalar vs vectorized PHY backends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mobility.models import MobilityModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.network import Network


class MobilityDriver:
    """Applies one mobility model's moves to a live network."""

    def __init__(self, model: MobilityModel, network: "Network") -> None:
        self.model = model
        self.network = network
        #: Cumulative distance travelled across all nodes (telemetry).
        self.total_distance_m = 0.0
        #: Ticks that moved at least one node.
        self.updates = 0

    def step(self) -> None:
        """Advance the model to ``sim.now`` and push moves to the channel."""
        moved = self.model.advance(self.network.sim.now)
        if not moved:
            return
        nodes = self.network.nodes
        for index, position in moved:
            node = nodes[index]
            distance = node.position.distance_to(position)
            self.total_distance_m += distance
            node.counters.add("mobility.moves")
            node.counters.add("mobility.distance_m", distance)
            node.set_position(position)
        self.updates += 1
        self.network.channel.invalidate_topology()
