"""Text bar charts for terminal-friendly figure rendering.

The paper's Figure 2 is a grouped bar chart; ``render_bar_chart`` gives
the CLI and examples a visual rendering of the same series without any
plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence


def render_bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    baseline: Optional[float] = None,
    title: Optional[str] = None,
    fill: str = "#",
    precision: int = 3,
) -> str:
    """Render name -> value as horizontal bars.

    When ``baseline`` is given, a ``|`` marker is drawn at its position
    -- used to show the ODMRP = 1.0 reference line in normalized charts.
    """
    if width < 10:
        raise ValueError("width below 10 is unreadable")
    if not values:
        raise ValueError("nothing to chart")
    maximum = max(values.values())
    if maximum <= 0:
        raise ValueError("bar chart needs at least one positive value")
    label_width = max(len(name) for name in values)
    lines = []
    if title:
        lines.append(title)
    marker_position = None
    if baseline is not None and 0 < baseline <= maximum:
        marker_position = round(width * baseline / maximum)
    for name, value in values.items():
        bar_length = max(0, round(width * value / maximum))
        bar = list(fill * bar_length + " " * (width - bar_length))
        if marker_position is not None and 0 < marker_position <= width:
            index = marker_position - 1
            bar[index] = "|" if index >= bar_length else "+"
        lines.append(
            f"{name.ljust(label_width)}  {''.join(bar)}  {value:.{precision}f}"
        )
    return "\n".join(lines)


def render_grouped_chart(
    series: Mapping[str, Mapping[str, float]],
    width: int = 40,
    baseline: Optional[float] = None,
) -> str:
    """Several charts stacked with their series titles (Figure 2 style)."""
    blocks = [
        render_bar_chart(values, width=width, baseline=baseline, title=title)
        for title, values in series.items()
    ]
    return "\n\n".join(blocks)


def render_sparkline(values: Sequence[float]) -> str:
    """A one-line trend sketch (used for time-series diagnostics)."""
    if not values:
        return ""
    glyphs = " .:-=+*#%@"
    low = min(values)
    high = max(values)
    if high == low:
        return glyphs[len(glyphs) // 2] * len(values)
    scale = (len(glyphs) - 1) / (high - low)
    return "".join(glyphs[int((v - low) * scale)] for v in values)
