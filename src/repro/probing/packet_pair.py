"""Packet-pair probing for the PP and ETT metrics.

Sender side: every interval (the paper uses 10 s) a node broadcasts two
probes back-to-back -- one small, one large.  Receiver side, per link:

* **delay**: the small->large inter-arrival is EWMA-smoothed with 90 %
  weight on history and 10 % on the new sample (the paper's weights);
* **loss penalty**: whenever either packet of a pair is lost, the EWMA is
  multiplied by 1.2 (the paper's 20 % penalty).  On a persistently lossy
  link the penalty compounds every interval, so the link cost grows
  exponentially with time -- the behaviour the paper credits for PP's
  aggressive avoidance of lossy links;
* **bandwidth** (ETT): ``large_bytes * 8 / inter-arrival``, EWMA-smoothed;
* **df** (ETT): the small probes double as loss-ratio probes, feeding a
  sliding-window estimator exactly like the ETX prober.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.net.node import Node
from repro.net.packet import Packet, PacketKind
from repro.probing.broadcast_probe import LossRatioEstimator
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTask


@dataclass
class PairProbePayload:
    """Contents of one half of a packet pair."""

    sender_id: int
    sequence: int
    interval_s: float
    is_large: bool
    large_size_bytes: int


class PacketPairEstimator:
    """Receiver-side per-link state for packet-pair probing."""

    def __init__(
        self,
        ewma_history_weight: float = 0.9,
        loss_penalty_factor: float = 1.2,
        window_intervals: int = 10,
    ) -> None:
        if not 0.0 <= ewma_history_weight < 1.0:
            raise ValueError("history weight must be in [0, 1)")
        if loss_penalty_factor < 1.0:
            raise ValueError("loss penalty must not reward losses")
        self.history_weight = ewma_history_weight
        self.penalty_factor = loss_penalty_factor
        self.ewma_delay_s: Optional[float] = None
        self.ewma_bandwidth_bps: Optional[float] = None
        self.loss_estimator = LossRatioEstimator(window_intervals)
        self._pending_small: Optional[Tuple[int, float]] = None
        self._highest_seq = 0
        self._last_heard: Optional[float] = None
        self._interval_s: Optional[float] = None
        self.pairs_completed = 0
        self.penalties_applied = 0

    # ------------------------------------------------------------------
    # Reception events

    def note_small(self, sequence: int, now: float, interval_s: float) -> None:
        self._interval_s = interval_s
        self._penalize_gap(sequence)
        if self._pending_small is not None:
            # Previous pair's large probe never arrived.
            self._apply_penalty()
        self._pending_small = (sequence, now)
        self._note_heard(sequence, now)
        self.loss_estimator.note_received(now, interval_s)

    def note_large(
        self, sequence: int, now: float, interval_s: float, large_bytes: int
    ) -> None:
        self._interval_s = interval_s
        pending = self._pending_small
        if pending is not None and pending[0] == sequence:
            delay = now - pending[1]
            self._pending_small = None
            if delay > 0.0:
                self._update_delay(delay)
                self._update_bandwidth(large_bytes * 8.0 / delay)
                self.pairs_completed += 1
        else:
            # Small probe of this pair was lost (and any skipped pairs too).
            self._penalize_gap(sequence)
            self._apply_penalty()
        self._note_heard(sequence, now)

    # ------------------------------------------------------------------
    # Queries

    def effective_delay_s(self, now: float) -> Optional[float]:
        """EWMA delay including penalties for silent (unheard) intervals.

        If the neighbor has gone quiet, every probing interval that passed
        without a pair is an (as yet unmaterialized) loss; they compound
        at read time so a dead link's cost explodes just as a lossy-but-
        alive link's does.
        """
        if self.ewma_delay_s is None:
            return None
        silent = self._silent_intervals(now)
        if silent <= 0:
            return self.ewma_delay_s
        return self.ewma_delay_s * self.penalty_factor ** silent

    def bandwidth_bps(self) -> Optional[float]:
        return self.ewma_bandwidth_bps

    def delivery_ratio(self, now: float) -> float:
        """df estimated from the small probes (used by ETT)."""
        return self.loss_estimator.delivery_ratio(now)

    # ------------------------------------------------------------------
    # Internals

    def _silent_intervals(self, now: float) -> int:
        if self._last_heard is None or self._interval_s is None:
            return 0
        grace = 0.5 * self._interval_s
        elapsed = now - self._last_heard - grace
        if elapsed <= 0:
            return 0
        return int(math.floor(elapsed / self._interval_s))

    def _note_heard(self, sequence: int, now: float) -> None:
        if sequence > self._highest_seq:
            self._highest_seq = sequence
        self._last_heard = now

    def _penalize_gap(self, sequence: int) -> None:
        """Wholly missed pairs between the last heard seq and this one."""
        missed = sequence - self._highest_seq - 1
        for _ in range(max(0, missed)):
            self._apply_penalty()

    def _apply_penalty(self) -> None:
        if self.ewma_delay_s is not None:
            self.ewma_delay_s *= self.penalty_factor
            self.penalties_applied += 1

    def _update_delay(self, sample_s: float) -> None:
        if self.ewma_delay_s is None:
            self.ewma_delay_s = sample_s
        else:
            w = self.history_weight
            self.ewma_delay_s = w * self.ewma_delay_s + (1.0 - w) * sample_s

    def _update_bandwidth(self, sample_bps: float) -> None:
        if self.ewma_bandwidth_bps is None:
            self.ewma_bandwidth_bps = sample_bps
        else:
            w = self.history_weight
            self.ewma_bandwidth_bps = (
                w * self.ewma_bandwidth_bps + (1.0 - w) * sample_bps
            )


class PacketPairAgent:
    """Sender side: broadcast a small+large probe pair every interval."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        interval_s: float = 10.0,
        small_size_bytes: int = 60,
        large_size_bytes: int = 200,
        jitter: float = 0.1,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("pair interval must be positive")
        if small_size_bytes >= large_size_bytes:
            raise ValueError("the large probe must be larger than the small one")
        self.sim = sim
        self.node = node
        self.interval_s = interval_s
        self.small_size_bytes = small_size_bytes
        self.large_size_bytes = large_size_bytes
        self._sequence = 0
        self._task = PeriodicTask(
            sim,
            interval_s,
            self._send_pair,
            jitter=jitter,
            rng=sim.rng.stream(f"probe.pair.{node.node_id}"),
        )

    def start(self) -> None:
        rng = self.sim.rng.stream(f"probe.pair.start.{self.node.node_id}")
        self._task.start(initial_delay=rng.uniform(0.0, self.interval_s))

    def stop(self) -> None:
        self._task.stop()

    def _send_pair(self) -> None:
        self._sequence += 1
        for is_large in (False, True):
            size = self.large_size_bytes if is_large else self.small_size_bytes
            kind = (
                PacketKind.PROBE_PAIR_LARGE
                if is_large
                else PacketKind.PROBE_PAIR_SMALL
            )
            packet = Packet(
                kind=kind,
                origin=self.node.node_id,
                size_bytes=size,
                created_at=self.sim.now,
                payload=PairProbePayload(
                    sender_id=self.node.node_id,
                    sequence=self._sequence,
                    interval_s=self.interval_s,
                    is_large=is_large,
                    large_size_bytes=self.large_size_bytes,
                ),
            )
            self.node.send_broadcast(packet)
