"""Smoke gate for the parallel experiment runner.

Runs a few-second mini-sweep serially, with a pool of 2 workers, and
from the warm disk cache, and fails (exit 1) if any pass produces a
``RunResult`` that differs from the serial baseline in any field.  This
is the cheap always-on guard that the parallel subsystem preserves the
simulator's bit-determinism; ``benchmarks/bench_perf_engine.py`` is the
timed version.

The same check runs under pytest as the ``perfsmoke`` marker
(``pytest -m perfsmoke``); it is deselected from the default tier-1 run
to keep that fast.

Usage: PYTHONPATH=src python scripts/bench_check.py [--jobs N]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

from repro.experiments.parallel import verify_parallel_consistency


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2,
                        help="pool size for the parallel pass (default 2)")
    args = parser.parse_args(argv)

    start = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-bench-check-") as cache:
        divergences = verify_parallel_consistency(
            jobs=args.jobs, cache_dir=cache
        )
    elapsed = time.perf_counter() - start

    if divergences:
        print(f"bench_check: FAIL ({elapsed:.1f}s)", file=sys.stderr)
        for line in divergences:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(
        f"bench_check: OK ({elapsed:.1f}s) -- serial, jobs={args.jobs}, "
        "and warm-cache sweeps are bit-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
