"""Adaptive-sweep benchmark: runs saved vs the exhaustive grid.

Measures what the sequential planner
(:mod:`repro.experiments.adaptive`) buys on a tiny-paper sweep: three
protocols on a dense 20-node mesh, stopping each protocol once its
normalized-throughput CI half-width reaches the target.  The row
records three things, gated in order:

* **correctness** -- re-running the sweep with ``--resume`` against the
  first pass's journal must reproduce the batch-by-batch plan and every
  run bit for bit;
* **savings** -- the planner must reach the target CI half-width for
  every protocol with at least 3x fewer runs than the exhaustive
  ``protocols x max_seeds`` grid it replaces (both sides timed);
* **pairing** -- with common random numbers on, the paired baseline
  deltas must come out no wider than the unpaired Welch intervals.

Results land in the ``adaptive_sweep`` section of ``BENCH_perf.json``.
Run via pytest (``pytest benchmarks/bench_adaptive_sweep.py -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_adaptive_sweep.py``).
Scale knobs: ``REPRO_JOBS`` (pool size), ``REPRO_ADAPTIVE_MAX_SEEDS``
(the exhaustive grid's seed budget).
"""

from __future__ import annotations

import os
import tempfile
import time

from bench_perf_engine import _env_int, _write_report
from repro.experiments.adaptive import (
    AdaptiveConfig,
    run_adaptive_experiment,
)
from repro.experiments.parallel import execute_runs, sweep_specs
from repro.experiments.scenarios import SimulationScenarioConfig
from repro.experiments.spec import ExperimentSpec

#: Dense, well-connected mesh: delivery is reliable, so per-topology
#: throughput variance is low and the planner can actually converge in
#: a handful of seeds (sparse meshes plateau at hw ~ 0.2 from topology
#: luck alone -- there, the cap is the realistic outcome).  The long
#: duration matters twice over: it averages down the within-run
#: fading/MAC noise, which both tightens each protocol's own CI and
#: leaves the *shared* topology component dominating per-seed
#: throughput -- exactly the correlation common random numbers cash in
#: (at 60 s the residual noise still swamps it and pairing loses its
#: df to no benefit at small n).
TINY_PAPER_CONFIG = SimulationScenarioConfig(
    num_nodes=20,
    area_width_m=500.0,
    area_height_m=500.0,
    num_groups=1,
    members_per_group=5,
    duration_s=120.0,
    warmup_s=20.0,
)

PROTOCOLS = ("odmrp", "etx", "spp")
TARGET_HALF_WIDTH = 0.1


def bench_adaptive_vs_exhaustive() -> None:
    jobs = _env_int("REPRO_JOBS", 4) or (os.cpu_count() or 1)
    max_seeds = _env_int("REPRO_ADAPTIVE_MAX_SEEDS", 16)
    spec = ExperimentSpec(
        name="bench-adaptive",
        protocols=PROTOCOLS,
        seeds=(1, 2),
        jobs=jobs,
        adaptive=AdaptiveConfig(
            target_half_width=TARGET_HALF_WIDTH,
            batch_size=2,
            min_seeds=2,
            max_seeds=max_seeds,
            paired=True,
        ),
        config=TINY_PAPER_CONFIG,
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-adaptive-") as tmp:
        journal = os.path.join(tmp, "journal.jsonl")
        start = time.perf_counter()
        plan = run_adaptive_experiment(spec, journal_path=journal)
        wall_adaptive = time.perf_counter() - start

        # Gate 1: --resume against the journal replays the identical
        # plan and runs, bit for bit.
        start = time.perf_counter()
        resumed = run_adaptive_experiment(
            spec, journal_path=journal, resume=True
        )
        wall_resume = time.perf_counter() - start
        assert resumed.plan_dict() == plan.plan_dict(), (
            "resumed plan diverged from the first pass"
        )
        assert resumed.runs == plan.runs, (
            "resumed runs diverged from the first pass"
        )

    # Gate 2: every protocol reached the target (this mesh is dense
    # enough that nothing should hit the cap), spending at least 3x
    # fewer runs than the exhaustive grid the planner replaces.
    reasons = plan.stop_reasons()
    assert all(reason == "converged" for reason in reasons.values()), (
        f"not every protocol converged: {reasons}"
    )
    for decision in plan.final_decisions().values():
        assert decision.ci_half_width <= TARGET_HALF_WIDTH, (
            f"{decision.protocol} stopped above target: "
            f"{decision.ci_half_width:.3f}"
        )
    exhaustive_runs = len(PROTOCOLS) * max_seeds
    savings = exhaustive_runs / plan.total_runs
    assert savings >= 3.0, (
        f"adaptive sweep saved only {savings:.2f}x over exhaustive "
        f"({plan.total_runs} vs {exhaustive_runs} runs); need >= 3x"
    )

    # Time the exhaustive grid for the wall-clock comparison (same
    # seeds, same pool -- the sweep the planner made unnecessary).
    grid = sweep_specs(TINY_PAPER_CONFIG, PROTOCOLS, plan.seed_pool)
    start = time.perf_counter()
    exhaustive = execute_runs(grid, jobs=jobs, use_cache=False)
    wall_exhaustive = time.perf_counter() - start
    assert all(run.error is None for run in exhaustive)

    # Gate 3: common random numbers pay -- paired baseline deltas are
    # never wider than the unpaired Welch intervals.
    comparisons = plan.paired_comparisons()
    assert comparisons, "no paired comparisons produced"
    for comparison in comparisons:
        assert comparison.paired_half_width <= (
            comparison.unpaired_half_width + 1e-12
        ), f"pairing widened the {comparison.protocol} CI"

    _write_report("adaptive_sweep", {
        "protocols": list(PROTOCOLS),
        "num_nodes": TINY_PAPER_CONFIG.num_nodes,
        "duration_s": TINY_PAPER_CONFIG.duration_s,
        "target_half_width": TARGET_HALF_WIDTH,
        "max_seeds": max_seeds,
        "paired": True,
        "jobs": jobs,
        "runs_adaptive": plan.total_runs,
        "runs_exhaustive": exhaustive_runs,
        "runs_saved_factor": round(savings, 3),
        "seeds_spent": plan.seeds_spent(),
        "stop_reasons": reasons,
        "achieved_half_width": {
            d.protocol: round(d.ci_half_width, 4)
            for d in plan.final_decisions().values()
        },
        "pairing_gain_pct": {
            c.protocol: round(c.gain_pct, 1) for c in comparisons
        },
        "wall_adaptive_s": round(wall_adaptive, 3),
        "wall_exhaustive_s": round(wall_exhaustive, 3),
        "wall_resume_s": round(wall_resume, 3),
        "resume_bit_identical": True,
    })
    print(
        f"\nadaptive sweep: {plan.total_runs} runs vs {exhaustive_runs} "
        f"exhaustive ({savings:.2f}x fewer), target hw "
        f"{TARGET_HALF_WIDTH:g} reached by all of {', '.join(PROTOCOLS)}; "
        f"adaptive {wall_adaptive:.1f}s, exhaustive {wall_exhaustive:.1f}s, "
        f"resume {wall_resume:.1f}s (bit-identical)"
    )


if __name__ == "__main__":
    import sys

    bench_adaptive_vs_exhaustive()
    print("wrote BENCH_perf.json")
    sys.exit(0)
