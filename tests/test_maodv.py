"""Tests for the tree-based (MAODV-like) multicast extension."""

from __future__ import annotations

import pytest

from repro.core.metrics import SppMetric
from repro.maodv.protocol import MaodvRouter
from repro.odmrp.config import OdmrpConfig
from repro.probing.broadcast_probe import BroadcastProbeAgent
from repro.probing.neighbor_table import NeighborTable
from repro.sim.process import PeriodicTask
from tests.conftest import link, make_loss_network


def build_maodv(network, metric=None, config=None, deliveries=None):
    config = config or OdmrpConfig()
    routers = {}
    tables = {}
    if metric is not None:
        for node in network.nodes:
            tables[node.node_id] = NeighborTable(
                network.sim, node, window_intervals=20
            )
            BroadcastProbeAgent(network.sim, node, interval_s=2.0).start()

    def on_deliver(packet, payload, receiver_id):
        if deliveries is not None:
            deliveries.append((receiver_id, payload.sequence))

    for node in network.nodes:
        routers[node.node_id] = MaodvRouter(
            network.sim,
            node,
            config=config,
            metric=metric,
            neighbor_table=tables.get(node.node_id),
            on_deliver=on_deliver,
        )
    return routers


class TestMaodvBasics:
    def test_chain_delivery(self):
        network = make_loss_network(
            4, {link(i, i + 1): 0.0 for i in range(3)}
        )
        deliveries = []
        routers = build_maodv(network, deliveries=deliveries)
        routers[3].join_group(1)
        routers[0].start_source(1)
        network.run(2.0)
        for i in range(30):
            network.sim.schedule(i * 0.05, lambda: routers[0].send_data(1))
        network.run(6.0)
        assert len(deliveries) >= 27
        assert routers[1].is_forwarder_for_source(1, 0)
        assert routers[2].is_forwarder_for_source(1, 0)

    def test_tree_state_is_per_source(self):
        """A node on source A's tree does not forward source B's data."""
        # 0 and 3 are sources; 1 and 2 are disjoint relays; 4 the member.
        losses = {
            link(0, 1): 0.0, link(1, 4): 0.0,
            link(3, 2): 0.0, link(2, 4): 0.0,
            link(0, 2): 0.0,  # 2 can hear source 0's floods too
            link(1, 2): 0.0,
        }
        network = make_loss_network(5, losses)
        routers = build_maodv(network)
        routers[4].join_group(1)
        routers[0].start_source(1)
        routers[3].start_source(1)
        network.run(3.0)
        # Relay 1 should be on source 0's tree only.
        assert routers[1].is_forwarder_for_source(1, 0)
        assert not routers[1].is_forwarder_for_source(1, 3)

    def test_tree_expires_quickly_without_refresh(self):
        network = make_loss_network(3, {link(0, 1): 0.0, link(1, 2): 0.0})
        config = OdmrpConfig(refresh_interval_s=3.0, fg_timeout_s=9.0)
        routers = build_maodv(network, config=config)
        routers[2].join_group(1)
        routers[0].start_source(1)
        network.run(2.0)
        assert routers[1].is_forwarder_for_source(1, 0)
        routers[0].stop_source(1)
        # Tree lifetime is 1.5 refresh rounds, far below the ODMRP FG
        # timeout of 3 rounds.
        network.run(network.sim.now + 1.5 * 3.0 + 0.5)
        assert not routers[1].is_forwarder_for_source(1, 0)

    def test_less_redundant_than_odmrp(self):
        """On a diamond, ODMRP's per-group FG accumulates both relays;
        MAODV's per-source tree keeps one."""
        losses = {
            link(0, 1): 0.0, link(1, 3): 0.0,
            link(0, 2): 0.0, link(2, 3): 0.0,
            link(1, 2): 0.0,
        }
        forwards = {}
        from tests.test_odmrp import build_routers as build_odmrp

        for name, builder in (("maodv", build_maodv), ("odmrp", build_odmrp)):
            network = make_loss_network(4, losses, seed=9)
            routers = builder(network)
            routers[3].join_group(1)
            routers[0].start_source(1)
            network.run(2.0)
            task = PeriodicTask(
                network.sim, 0.05, lambda r=routers: r[0].send_data(1)
            )
            task.start()
            network.run(30.0)
            task.stop()
            forwards[name] = sum(
                network.nodes[i].counters.get("odmrp.data_forwarded")
                for i in (1, 2)
            )
        assert forwards["maodv"] < forwards["odmrp"]

    def test_metric_guides_tree_choice(self):
        """SPP trees avoid a lossy shortcut relay."""
        losses = {
            link(0, 1): 0.02, link(1, 3): 0.02,   # clean relay 1
            link(0, 2): 0.45, link(2, 3): 0.45,   # lossy relay 2
            link(1, 2): 0.0,
        }
        network = make_loss_network(4, losses, seed=21)
        deliveries = []
        routers = build_maodv(
            network, metric=SppMetric(), deliveries=deliveries
        )
        routers[3].join_group(1)
        network.run(45.0)  # probe warmup
        routers[0].start_source(1)
        task = PeriodicTask(network.sim, 0.05, lambda: routers[0].send_data(1))
        task.start()
        network.run(100.0)
        task.stop()
        member = network.nodes[3]
        via_clean = member.counters.get("odmrp.data_rx_from.1")
        via_lossy = member.counters.get("odmrp.data_rx_from.2")
        assert via_clean > via_lossy
