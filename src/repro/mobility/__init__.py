"""repro.mobility: time-varying positions, obstacles, and batteries.

The subsystem makes node positions, the radio environment, and node
lifetime first-class, *time-varying* scenario state:

* :mod:`repro.mobility.models` -- the mobility model registry
  (``static`` / ``random-waypoint`` / ``gauss-markov`` /
  ``waypoint-swarm``), each drawing from its own isolated RNG stream.
* :mod:`repro.mobility.driver` -- the observer tick that pushes model
  moves through ``Node.set_position`` into the channel's incremental
  topology invalidation.
* :mod:`repro.mobility.config` -- the declarative
  :class:`MobilitySpec` / :class:`EnergySpec` that ride on scenario
  configs and round-trip through spec files.
* :mod:`repro.mobility.energy` -- per-node battery accounting with
  dead-at-zero through the existing fault path.

Obstacle shadowing lives in :mod:`repro.phy.obstacles` (it is a
propagation-layer concern), but is part of the same dynamic-networks
workload and is configured alongside these specs.
"""

from repro.mobility.config import EnergySpec, MobilitySpec
from repro.mobility.driver import MobilityDriver
from repro.mobility.energy import EnergyModel
from repro.mobility.models import (
    MobilityModel,
    build_mobility_model,
    mobility_model_by_name,
    mobility_model_names,
    register_mobility_model,
)

__all__ = [
    "EnergyModel",
    "EnergySpec",
    "MobilityDriver",
    "MobilityModel",
    "MobilitySpec",
    "build_mobility_model",
    "mobility_model_by_name",
    "mobility_model_names",
    "register_mobility_model",
]
