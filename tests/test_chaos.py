"""Tests for the chaos harness (:mod:`repro.experiments.chaos`).

The plan/injection plumbing is cheap and runs in tier-1.  The full
fault-storm harness drives real simulations through kills, hangs and
cache corruption, so it is opt-in: ``pytest -m chaos`` (CI runs it as a
dedicated bounded job) or ``repro chaos --quick`` from the CLI.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.chaos import (
    CHAOS_ACTIONS,
    CHAOS_PLAN_ENV,
    ChaosFault,
    ChaosPlan,
    active_plan,
    chaos_config,
    corrupt_cache_entry,
    maybe_inject_fault,
    run_chaos,
)
from repro.experiments.parallel import RunSpec, cache_load, cache_store
from repro.experiments.results import RunResult
from repro.experiments.scenarios import SimulationScenarioConfig

CFG = SimulationScenarioConfig(num_nodes=4, duration_s=1.0, warmup_s=0.1)


class TestChaosPlan:
    def test_round_trip(self, tmp_path):
        plan = ChaosPlan(faults=(
            ChaosFault("odmrp", 1, "crash"),
            ChaosFault("spp", 2, "hang", attempt=None, hang_s=9.0),
        ))
        path = plan.save(str(tmp_path / "plan.json"))
        loaded = ChaosPlan.load(path)
        assert loaded == plan

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos action"):
            ChaosFault("odmrp", 1, "set-on-fire")

    def test_fault_matching_by_attempt(self):
        first_only = ChaosFault("odmrp", 1, "crash", attempt=0)
        every = ChaosFault("odmrp", 1, "crash", attempt=None)
        assert first_only.matches("ODMRP", 1, 0)
        assert not first_only.matches("odmrp", 1, 1)
        assert every.matches("odmrp", 1, 3)
        assert not every.matches("odmrp", 2, 0)

    def test_plan_returns_first_matching_fault(self):
        plan = ChaosPlan(faults=(
            ChaosFault("odmrp", 1, "crash"),
            ChaosFault("odmrp", 1, "hang"),
        ))
        fault = plan.fault_for("odmrp", 1, 0)
        assert fault is not None and fault.action == "crash"
        assert plan.fault_for("spp", 1, 0) is None

    def test_all_actions_constructible(self):
        for action in CHAOS_ACTIONS:
            ChaosFault("odmrp", 1, action)


class TestPlanArming:
    def test_active_plan_sets_and_restores_env(self, tmp_path):
        plan = ChaosPlan(faults=(ChaosFault("odmrp", 1, "exception"),))
        before = os.environ.get(CHAOS_PLAN_ENV)
        with active_plan(plan, str(tmp_path)) as path:
            assert os.environ[CHAOS_PLAN_ENV] == path
            assert ChaosPlan.load(path) == plan
        assert os.environ.get(CHAOS_PLAN_ENV) == before

    def test_injection_noop_without_plan(self, monkeypatch):
        monkeypatch.delenv(CHAOS_PLAN_ENV, raising=False)
        maybe_inject_fault(RunSpec("odmrp", CFG, 1), attempt=0)

    def test_injection_noop_with_unreadable_plan(self, monkeypatch,
                                                 tmp_path):
        bad = tmp_path / "plan.json"
        bad.write_text("{torn", encoding="utf-8")
        monkeypatch.setenv(CHAOS_PLAN_ENV, str(bad))
        maybe_inject_fault(RunSpec("odmrp", CFG, 1), attempt=0)

    def test_exception_fault_raises_in_process(self, monkeypatch,
                                               tmp_path):
        from repro.experiments.chaos import ChaosError

        plan = ChaosPlan(faults=(ChaosFault("odmrp", 1, "exception"),))
        with active_plan(plan, str(tmp_path)):
            with pytest.raises(ChaosError):
                maybe_inject_fault(RunSpec("odmrp", CFG, 1), attempt=0)
            # Wrong attempt / wrong spec: untouched.
            maybe_inject_fault(RunSpec("odmrp", CFG, 1), attempt=1)
            maybe_inject_fault(RunSpec("spp", CFG, 1), attempt=0)


class TestCacheCorruption:
    def _result(self, spec: RunSpec) -> RunResult:
        return RunResult(
            protocol=spec.protocol, topology_seed=spec.seed,
            duration_s=1.0, offered_packets=1, expected_deliveries=1,
            delivered_packets=1, delivered_bytes=512,
            mean_delay_s=0.01, probe_bytes=1.0,
        )

    def test_corrupt_missing_entry_returns_false(self, tmp_path):
        assert not corrupt_cache_entry(
            str(tmp_path), RunSpec("odmrp", CFG, 1)
        )

    @pytest.mark.parametrize("mode", ["truncate", "garbage"])
    def test_corrupted_entry_becomes_a_miss(self, tmp_path, mode):
        cache_dir = str(tmp_path)
        spec = RunSpec("odmrp", CFG, 1)
        cache_store(cache_dir, spec, self._result(spec))
        assert cache_load(cache_dir, spec) is not None
        assert corrupt_cache_entry(cache_dir, spec, mode=mode)
        assert cache_load(cache_dir, spec) is None


def test_chaos_config_is_tiny():
    quick = chaos_config(quick=True)
    full = chaos_config(quick=False)
    assert quick.num_nodes <= 8
    assert quick.duration_s < full.duration_s


@pytest.mark.chaos
def test_chaos_harness_quick(tmp_path):
    """End-to-end: inject kills/hangs/corruption against real runs and
    assert the supervisor recovers, quarantines, and resumes
    bit-identically.  ~15 s; excluded from the default run."""
    report = run_chaos(quick=True, jobs=2, work_dir=str(tmp_path))
    assert report.ok, "\n" + report.render()
    names = {check.name for check in report.checks}
    assert {
        "baseline-clean", "chaos-recovered", "chaos-identical",
        "quarantine-surfaces", "cache-corruption-recovers",
        "interrupt-drains", "resume-identical",
        "dir-lease-reclaimed", "dir-queue-drained", "dir-identical",
    } <= names
